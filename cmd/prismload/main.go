// Command prismload puts network load on a prismserver: a YCSB-mix load
// generator speaking the RESP2 subset, with explicit pipelining, closed-
// and open-loop modes, and per-op-type wall-clock latency reporting from
// the same log-bucketed histograms the offline bench harness uses.
//
// Closed loop (default): each connection keeps -pipeline commands in
// flight — send a window, flush once, read the window's replies — so
// throughput measures the wire + engine, not the client's turnaround.
// Open loop (-rate N): commands are issued on a fixed schedule across
// connections regardless of completions (the arrival process of a real
// front-end fleet), and latency includes any server-side queueing that
// pacing exposes.
//
// Usage:
//
//	prismload -addr 127.0.0.1:6380 -load -workload b -ops 200000
//	prismload -conns 16 -pipeline 64 -workload a
//	prismload -rate 50000 -workload c            # open loop, 50k ops/s
//	prismload -load -check                       # verify counts vs INFO
//	prismload -workload a -batch 8               # MSET-coalesced writes
//
// -batch N rewrites each connection's stream, merging every run of
// consecutive SETs into one MSET of up to N pairs — the explicit form of
// the server's pipelined-write batching, exercising the engine's
// owner-goroutine group-commit path. Reads keep their position in the
// stream, and -check still balances: the server counts each MSET pair as
// a set.
//
// -check compares the generator's issued op counts against the server's
// INFO command-counter deltas and exits non-zero on any mismatch — the
// serve-smoke harness runs exactly that.
//
// Durability checking (the crash-smoke harness): -acklog FILE journals
// every acknowledged SET/DEL key to FILE — a key is written only after its
// reply has been read off the wire, so the file is exactly the set of
// writes the server acknowledged. With -acklog, a run that dies on a broken
// connection (the server was kill -9'd mid-burst) exits 0: losing the tail
// of an in-flight window is the expected shape of a crash. After the server
// restarts, -verify FILE GETs every unambiguous key in the journal and
// exits non-zero if an acknowledged SET is missing (or an acknowledged DEL
// resurfaced) — acknowledged-write durability, end to end.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/prismdb/prismdb/internal/metrics"
	"github.com/prismdb/prismdb/internal/server"
	"github.com/prismdb/prismdb/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6380", "prismserver address")
	wl := flag.String("workload", "b", "YCSB workload letter (a..f), or x for the delete-heavy mix (~25% DEL)")
	keys := flag.Int("keys", 20000, "initial dataset keys")
	ops := flag.Int("ops", 100000, "operations to issue")
	valueSize := flag.Int("value", 128, "object size in bytes")
	conns := flag.Int("conns", 8, "client connections")
	pipeline := flag.Int("pipeline", 1, "closed-loop pipeline depth per connection (1 = unpipelined)")
	batch := flag.Int("batch", 1, "coalesce runs of consecutive SETs into MSET batches of up to N pairs (1 = plain SET)")
	rate := flag.Float64("rate", 0, "open-loop target ops/s across all connections (0 = closed loop)")
	doLoad := flag.Bool("load", false, "preload the dataset via SET before measuring")
	theta := flag.Float64("theta", 0, "zipfian parameter (0 = YCSB default 0.99)")
	seed := flag.Int64("seed", 1, "workload seed")
	check := flag.Bool("check", false, "verify issued op counts against server INFO deltas")
	dialWait := flag.Duration("wait", 5*time.Second, "how long to retry the initial connection")
	ackLogPath := flag.String("acklog", "", "journal every acknowledged SET/DEL key to this file (crash-recovery harness); server death mid-run exits 0")
	verifyPath := flag.String("verify", "", "verify a previous run's -acklog against the (restarted) server and exit; non-zero on any lost acknowledged write")
	retries := flag.Int("retries", 0, "max backoff-retry attempts after a retryable failure — connection error, -READONLY, or a max-clients rejection — before a worker gives up (0 = fail immediately; replayed ops overcount vs -check)")
	flag.Parse()

	if *verifyPath != "" {
		os.Exit(verifyAckLog(*addr, *verifyPath, *dialWait))
	}

	if *conns < 1 || *pipeline < 1 || *ops < 1 {
		log.Fatal("prismload: -conns, -pipeline, and -ops must be positive")
	}
	if len(*wl) != 1 {
		log.Fatalf("prismload: -workload must be a single letter a..f or x, got %q", *wl)
	}
	var cfg workload.Config
	if l := strings.ToUpper(*wl)[0]; l == 'X' {
		cfg = workload.DeleteHeavy(*keys, *valueSize, *theta, *seed)
	} else {
		var err error
		cfg, err = workload.YCSB(l, *keys, *valueSize, *theta, *seed)
		if err != nil {
			log.Fatalf("prismload: %v", err)
		}
	}

	if *ackLogPath != "" {
		f, err := os.Create(*ackLogPath)
		if err != nil {
			log.Fatalf("prismload: acklog: %v", err)
		}
		ackJournal = &ackLog{f: f}
		defer f.Close()
	}

	// One control connection, retried while the server starts up.
	ctl, err := dialRetry(*addr, *dialWait)
	if err != nil {
		log.Fatalf("prismload: connect %s: %v", *addr, err)
	}
	defer ctl.close()

	// Counter baseline before any of our traffic, so the -check delta
	// covers the load phase too.
	before, err := ctl.opCounts()
	if err != nil {
		log.Fatalf("prismload: INFO: %v", err)
	}

	rt := &retrier{addr: *addr, wait: *dialWait, max: *retries}

	gen := workload.NewGenerator(cfg)
	if *doLoad {
		start := time.Now()
		if err := loadPhase(*addr, gen, *keys, *conns, *dialWait, rt); err != nil {
			log.Fatalf("prismload: load: %v", err)
		}
		log.Printf("loaded %d keys in %v", *keys, time.Since(start).Round(time.Millisecond))
	}

	// Generation stays serial (the generator is not safe for concurrent
	// use); ops are dealt round-robin so every connection sees the mix.
	streams := make([][]genOp, *conns)
	var issued opCounts
	for i := 0; i < *ops; i++ {
		op := gen.Next()
		g := toGenOp(op)
		issued.add(g)
		streams[i%*conns] = append(streams[i%*conns], g)
	}
	if *batch > 1 {
		// Rewrite each stream AFTER counting: an MSET's pairs count as
		// sets on both sides (the server tallies cmd_set per element), so
		// -check stays balanced under batching.
		for c := range streams {
			streams[c] = coalesceSets(streams[c], *batch)
		}
	}

	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) * float64(*conns) / *rate)
	}

	results := make([]*connResult, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := newConnResult()
			results[c] = res
			nc, err := dialRetry(*addr, *dialWait)
			if err != nil {
				res.err = err
				return
			}
			defer nc.close()
			if interval > 0 {
				res.err = nc.runOpen(streams[c], interval, res, rt)
			} else {
				res.err = nc.runClosed(streams[c], *pipeline, res, rt)
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	died := false
	for _, res := range results {
		if res != nil && res.err != nil {
			if ackJournal != nil {
				// The crash harness kills the server mid-burst: broken
				// connections are the run's expected ending. Everything the
				// server acknowledged before dying is in the journal.
				log.Printf("prismload: worker stopped: %v (expected when the server is crash-tested)", res.err)
				died = true
				continue
			}
			log.Fatalf("prismload: worker: %v", res.err)
		}
	}
	if ackJournal != nil {
		log.Printf("acklog: journaled %d acknowledged writes to %s", ackJournal.n, *ackLogPath)
	}
	if died {
		report(issued, results, elapsed, *rate)
		return
	}

	after, err := ctl.opCounts()
	if err != nil {
		log.Fatalf("prismload: INFO: %v", err)
	}

	report(issued, results, elapsed, *rate)

	if *check {
		delta := after.minus(before)
		if *doLoad {
			issued.sets += int64(*keys)
		}
		ok := true
		for _, c := range []struct {
			name         string
			sent, served int64
		}{
			{"get", issued.gets, delta.gets},
			{"set", issued.sets, delta.sets},
			{"del", issued.dels, delta.dels},
			{"scan", issued.scans, delta.scans},
		} {
			if c.sent != c.served {
				fmt.Printf("CHECK FAIL %s: issued %d, server counted %d\n", c.name, c.sent, c.served)
				ok = false
			}
		}
		if !ok {
			os.Exit(1)
		}
		fmt.Printf("CHECK OK: server INFO counters match issued ops (get=%d set=%d del=%d scan=%d)\n",
			issued.gets, issued.sets, issued.dels, issued.scans)
	}
}

// serverError is a RESP error reply ("READONLY ...", "ERR ..."): the
// command reached the server and was refused, as opposed to a transport
// failure. The retrier tells the two apart.
type serverError string

func (e serverError) Error() string { return "server error: " + string(e) }

// Retry backoff shape: exponential from retryBase, ±50% jitter, capped.
const (
	retryBase = 10 * time.Millisecond
	retryCap  = 2 * time.Second
)

// retryCounts tallies retries by trigger, for the final report. Global
// atomics because the load phase's workers retry too, before connResults
// exist.
var retryCounts struct{ conn, readonly, maxconns atomic.Int64 }

// retryClass buckets an op-loop failure: "conn" for transport errors (the
// server died, the connection was reset or idle-closed), "readonly" for
// -READONLY refusals (the engine degraded to read-only), "maxconns" for
// the server's connection-cap rejection. Anything else — a genuine command
// error, a client bug — returns "" and is not retried.
func retryClass(err error) string {
	var se serverError
	if errors.As(err, &se) {
		switch {
		case strings.HasPrefix(string(se), "READONLY"):
			return "readonly"
		case strings.HasPrefix(string(se), "ERR max clients"):
			return "maxconns"
		}
		return ""
	}
	var ne net.Error
	if errors.As(err, &ne) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return "conn"
	}
	// net.OpError (reset, refused, broken pipe) without the net.Error
	// interface match still counts as transport.
	var oe *net.OpError
	if errors.As(err, &oe) {
		return "conn"
	}
	return ""
}

// retrier retries a worker's failed attempt with exponential backoff and
// jitter, bounded by max attempts per failure site. Every retry abandons
// the old connection and dials fresh: a mid-window failure leaves unread
// replies buffered on the wire, and reconnecting is the one reliable way
// to resynchronize the stream.
type retrier struct {
	addr string
	wait time.Duration
	max  int
}

func (rt *retrier) backoff(attempt int) time.Duration {
	d := retryBase << uint(attempt)
	if d <= 0 || d > retryCap {
		d = retryCap
	}
	// ±50% jitter, so a fleet of workers refused together doesn't retry
	// together.
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// again decides one failed attempt's fate: non-retryable errors (or an
// exhausted budget) come straight back to fail the worker; retryable ones
// are counted, backed off, and answered with a fresh connection swapped
// into c. Re-issuing an op whose first attempt actually landed is safe —
// SET and DEL are idempotent, and the ack journal records only replies
// that were read, so it never over-claims.
func (rt *retrier) again(c *client, err error, attempt *int) error {
	class := retryClass(err)
	if class == "" || rt.max <= 0 {
		return err
	}
	if *attempt >= rt.max {
		return fmt.Errorf("giving up after %d retries: %w", *attempt, err)
	}
	switch class {
	case "conn":
		retryCounts.conn.Add(1)
	case "readonly":
		retryCounts.readonly.Add(1)
	case "maxconns":
		retryCounts.maxconns.Add(1)
	}
	d := rt.backoff(*attempt)
	*attempt++
	time.Sleep(d)
	nc, derr := dialRetry(rt.addr, rt.wait)
	if derr != nil {
		return fmt.Errorf("reconnect after %v: %w", err, derr)
	}
	c.nc.Close()
	*c = *nc
	return nil
}

// ackLog journals acknowledged writes. One "S key" or "D key" line per
// acknowledged SET/DEL, written strictly AFTER the op's reply was read —
// the journal never claims an acknowledgement the server didn't send.
// Workload keys are ASCII ("user…"), so the format is plain text.
type ackLog struct {
	mu sync.Mutex
	f  *os.File
	n  int64
}

// ackJournal is nil unless -acklog was given; the op loops call record
// unconditionally and it no-ops when disabled.
var ackJournal *ackLog

func (a *ackLog) record(kind byte, key []byte) {
	if a == nil {
		return
	}
	line := make([]byte, 0, len(key)+3)
	if kind == 'd' {
		line = append(line, 'D', ' ')
	} else {
		line = append(line, 'S', ' ')
	}
	line = append(line, key...)
	line = append(line, '\n')
	a.mu.Lock()
	a.f.Write(line)
	a.n++
	a.mu.Unlock()
}

// verifyAckLog replays an -acklog journal against the (recovered) server:
// every key whose last fate is unambiguous must be present (acknowledged
// SET) or absent (acknowledged DEL). Keys both SET and DELed during the run
// are skipped — concurrent connections make their server-side order
// unknowable from the client. Returns the process exit code.
func verifyAckLog(addr, path string, wait time.Duration) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Printf("prismload: verify: %v", err)
		return 1
	}
	type fate struct{ set, del bool }
	fates := make(map[string]*fate)
	order := []string{} // first-seen order, for stable output
	for _, line := range strings.Split(string(data), "\n") {
		if len(line) < 3 || line[1] != ' ' {
			continue
		}
		key := line[2:]
		f := fates[key]
		if f == nil {
			f = &fate{}
			fates[key] = f
			order = append(order, key)
		}
		if line[0] == 'D' {
			f.del = true
		} else {
			f.set = true
		}
	}

	c, err := dialRetry(addr, wait)
	if err != nil {
		log.Printf("prismload: verify: connect %s: %v", addr, err)
		return 1
	}
	defer c.close()

	const depth = 128
	var checked, skipped, lost, resurrected int
	pending := make([]string, 0, depth)
	flush := func() bool {
		if err := c.bw.Flush(); err != nil {
			log.Printf("prismload: verify: %v", err)
			return false
		}
		for _, key := range pending {
			rep, err := server.ReadReply(c.br)
			if err != nil || rep.IsErr() {
				log.Printf("prismload: verify GET %s: %v %s", key, err, rep.Str)
				return false
			}
			f := fates[key]
			if f.set && rep.Null {
				fmt.Printf("VERIFY FAIL: acknowledged SET %s lost after recovery\n", key)
				lost++
			}
			if f.del && !rep.Null {
				fmt.Printf("VERIFY FAIL: acknowledged DEL %s resurfaced after recovery\n", key)
				resurrected++
			}
			checked++
		}
		pending = pending[:0]
		return true
	}
	for _, key := range order {
		f := fates[key]
		if f.set && f.del {
			skipped++
			continue
		}
		c.writeCmd([]byte("GET"), []byte(key))
		pending = append(pending, key)
		if len(pending) == depth && !flush() {
			return 1
		}
	}
	if len(pending) > 0 && !flush() {
		return 1
	}

	// Surface the server's recovery counters alongside the verdict.
	c.writeCmd([]byte("INFO"), []byte("persistence"))
	if err := c.bw.Flush(); err == nil {
		// Best-effort: a failed INFO read must not change the verdict, so its
		// error deliberately stays out of the err name.
		if rep, rerr := server.ReadReply(c.br); rerr == nil && !rep.IsErr() && len(rep.Str) > 0 {
			fmt.Print(strings.ReplaceAll(string(rep.Str), "\r\n", "\n"))
		}
	}

	if lost+resurrected > 0 {
		fmt.Printf("VERIFY FAIL: %d lost, %d resurrected of %d checked (%d ambiguous skipped)\n",
			lost, resurrected, checked, skipped)
		return 1
	}
	fmt.Printf("VERIFY OK: %d acknowledged writes intact after recovery (%d ambiguous skipped)\n",
		checked, skipped)
	return 0
}

// genOp is one pre-generated request. kind: 'g' GET, 's' SET, 'd' DEL,
// 'r' RMW (GET + SET), 'c' SCAN, 'm' MSET (a -batch coalesced run of
// SETs; mkeys/mvals hold its pairs).
type genOp struct {
	kind    byte
	key     []byte
	value   []byte
	scanLen int
	mkeys   [][]byte
	mvals   [][]byte
}

// coalesceSets rewrites one connection's stream, merging each run of
// consecutive SETs into MSET ops of up to max pairs. Other op kinds pass
// through unchanged, so the wire-visible mix (and its ordering relative to
// the reads) is preserved — only the SET framing changes.
func coalesceSets(ops []genOp, max int) []genOp {
	out := make([]genOp, 0, len(ops))
	for i := 0; i < len(ops); {
		if ops[i].kind != 's' {
			out = append(out, ops[i])
			i++
			continue
		}
		j := i
		for j < len(ops) && ops[j].kind == 's' && j-i < max {
			j++
		}
		if j-i == 1 {
			out = append(out, ops[i])
		} else {
			m := genOp{kind: 'm', mkeys: make([][]byte, 0, j-i), mvals: make([][]byte, 0, j-i)}
			for k := i; k < j; k++ {
				m.mkeys = append(m.mkeys, ops[k].key)
				m.mvals = append(m.mvals, ops[k].value)
			}
			out = append(out, m)
		}
		i = j
	}
	return out
}

func toGenOp(op workload.Op) genOp {
	switch op.Kind {
	case workload.OpRead:
		return genOp{kind: 'g', key: op.Key}
	case workload.OpUpdate, workload.OpInsert:
		return genOp{kind: 's', key: op.Key, value: op.Value}
	case workload.OpScan:
		return genOp{kind: 'c', key: op.Key, scanLen: op.ScanLen}
	case workload.OpDelete:
		return genOp{kind: 'd', key: op.Key}
	default: // OpRMW
		return genOp{kind: 'r', key: op.Key, value: op.Value}
	}
}

// opCounts tallies commands by wire op, the same buckets INFO reports.
type opCounts struct{ gets, sets, dels, scans int64 }

func (o *opCounts) add(g genOp) {
	switch g.kind {
	case 'g':
		o.gets++
	case 's':
		o.sets++
	case 'd':
		o.dels++
	case 'c':
		o.scans++
	case 'r':
		o.gets++
		o.sets++
	}
}

func (o opCounts) minus(b opCounts) opCounts {
	return opCounts{o.gets - b.gets, o.sets - b.sets, o.dels - b.dels, o.scans - b.scans}
}

// connResult is one worker's private histograms (merged after the run, as
// the bench parallel driver does).
type connResult struct {
	get, set, del, scan, mset *metrics.Histogram
	err                       error
}

func newConnResult() *connResult {
	return &connResult{
		get:  metrics.NewHistogram(),
		set:  metrics.NewHistogram(),
		del:  metrics.NewHistogram(),
		scan: metrics.NewHistogram(),
		mset: metrics.NewHistogram(),
	}
}

func (r *connResult) histFor(kind byte) *metrics.Histogram {
	switch kind {
	case 'g':
		return r.get
	case 'd':
		return r.del
	case 'c':
		return r.scan
	case 'm':
		return r.mset
	default:
		return r.set
	}
}

// client is one RESP connection.
type client struct {
	nc net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

func dialRetry(addr string, wait time.Duration) (*client, error) {
	deadline := time.Now().Add(wait)
	for {
		nc, err := net.Dial("tcp", addr)
		if err == nil {
			return &client{
				nc: nc,
				br: bufio.NewReaderSize(nc, 64<<10),
				bw: bufio.NewWriterSize(nc, 64<<10),
			}, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func (c *client) close() { c.nc.Close() }

// writeCmd encodes one command as a RESP array of bulk strings.
func (c *client) writeCmd(args ...[]byte) {
	fmt.Fprintf(c.bw, "*%d\r\n", len(args))
	for _, a := range args {
		fmt.Fprintf(c.bw, "$%d\r\n", len(a))
		c.bw.Write(a)
		c.bw.WriteString("\r\n")
	}
}

// writeOp emits the wire command(s) for one genOp, returning how many
// replies it will produce.
func (c *client) writeOp(g genOp) int {
	switch g.kind {
	case 'g':
		c.writeCmd([]byte("GET"), g.key)
		return 1
	case 's':
		c.writeCmd([]byte("SET"), g.key, g.value)
		return 1
	case 'c':
		c.writeCmd([]byte("SCAN"), g.key, []byte(strconv.Itoa(g.scanLen)))
		return 1
	case 'd':
		c.writeCmd([]byte("DEL"), g.key)
		return 1
	case 'm':
		args := make([][]byte, 0, 1+2*len(g.mkeys))
		args = append(args, []byte("MSET"))
		for i := range g.mkeys {
			args = append(args, g.mkeys[i], g.mvals[i])
		}
		c.writeCmd(args...)
		return 1
	default: // RMW: read, then write what the generator produced
		c.writeCmd([]byte("GET"), g.key)
		c.writeCmd([]byte("SET"), g.key, g.value)
		return 2
	}
}

func (c *client) readOK() error {
	rep, err := server.ReadReply(c.br)
	if err != nil {
		return err
	}
	if rep.IsErr() {
		return serverError(rep.Str)
	}
	return nil
}

// runClosed keeps up to depth genOps in flight: write a window, flush
// once, read the window's replies. Per-op latency is measured from the
// window's flush to that op's reply — the closed-loop client's real wait.
// A retryable failure replays the window's unacknowledged tail on a fresh
// connection, with backoff.
func (c *client) runClosed(ops []genOp, depth int, res *connResult, rt *retrier) error {
	for off := 0; off < len(ops); off += depth {
		end := off + depth
		if end > len(ops) {
			end = len(ops)
		}
		window := ops[off:end]
		acked := 0
		attempt := 0
		for {
			err := c.issueWindow(window[acked:], res, &acked)
			if err == nil {
				break
			}
			if rerr := rt.again(c, err, &attempt); rerr != nil {
				return rerr
			}
		}
	}
	return nil
}

// issueWindow writes one window remainder, flushes once, and reads the
// replies in order, advancing *acked past each fully acknowledged op — so
// a mid-window failure tells the retry loop exactly which suffix to
// replay. Acks journal only after the op's own reply is read, never on
// issue.
func (c *client) issueWindow(window []genOp, res *connResult, acked *int) error {
	replies := 0
	for _, g := range window {
		replies += c.writeOp(g)
	}
	t0 := time.Now()
	if err := c.bw.Flush(); err != nil {
		return err
	}
	ri := 0
	for _, g := range window {
		n := 1
		if g.kind == 'r' {
			n = 2
		}
		for i := 0; i < n; i++ {
			if err := c.readOK(); err != nil {
				return err
			}
			ri++
		}
		res.histFor(g.kind).Record(time.Since(t0))
		switch g.kind {
		case 's', 'd', 'r':
			ackJournal.record(g.kind, g.key)
		case 'm':
			// One MSET reply acknowledges every pair in it.
			for _, k := range g.mkeys {
				ackJournal.record('s', k)
			}
		}
		*acked++
	}
	if ri != replies {
		return fmt.Errorf("reply accounting bug: read %d, expected %d", ri, replies)
	}
	return nil
}

// runOpen issues ops on a fixed schedule (absolute deadlines, so a slow
// reply doesn't shift the arrival process) and reads replies from a
// concurrent reader. Latency is send-to-reply per op. A retryable failure
// replays every op whose acknowledgement never arrived — the op the
// reader failed on, everything queued behind it, and everything unsent —
// on a fresh connection; the replay runs on the same pacing schedule.
func (c *client) runOpen(ops []genOp, interval time.Duration, res *connResult, rt *retrier) error {
	attempt := 0
	for {
		replay, err := c.openPass(ops, interval, res)
		if err == nil {
			return nil
		}
		if rerr := rt.again(c, err, &attempt); rerr != nil {
			return rerr
		}
		ops = replay
	}
}

// openPass runs one open-loop pass over ops. On failure it returns the
// unacknowledged suffix for the caller to replay (re-issuing a write that
// DID land is idempotent; the ack journal records only read replies, so
// it never over-claims).
func (c *client) openPass(ops []genOp, interval time.Duration, res *connResult) ([]genOp, error) {
	type inflight struct {
		op      genOp
		t0      time.Time
		replies int
	}
	type readFail struct {
		err     error
		unacked []genOp
	}
	// The queue bounds how far issuance may outrun the server before the
	// writer blocks (a saturated open loop degenerates to closed).
	queue := make(chan inflight, 1<<14)
	stop := make(chan struct{})      // reader → writer: stop issuing
	readerDone := make(chan readFail, 1)
	go func() {
		for f := range queue {
			for i := 0; i < f.replies; i++ {
				if err := c.readOK(); err != nil {
					// Collect this op and everything still queued behind it
					// as unacknowledged. The writer sees stop, closes the
					// queue, and the drain below terminates.
					close(stop)
					un := []genOp{f.op}
					for q := range queue {
						un = append(un, q.op)
					}
					readerDone <- readFail{err: err, unacked: un}
					return
				}
			}
			res.histFor(f.op.kind).Record(time.Since(f.t0))
			switch f.op.kind {
			case 's', 'd', 'r':
				ackJournal.record(f.op.kind, f.op.key)
			case 'm':
				for _, k := range f.op.mkeys {
					ackJournal.record('s', k)
				}
			}
		}
		readerDone <- readFail{}
	}()

	start := time.Now()
	for i, g := range ops {
		next := start.Add(time.Duration(i) * interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case <-stop:
			// The reader hit an error; ops[i:] were never sent.
			close(queue)
			rf := <-readerDone
			return append(rf.unacked, ops[i:]...), rf.err
		default:
		}
		t0 := time.Now()
		replies := c.writeOp(g)
		if err := c.bw.Flush(); err != nil {
			// Unwedge the reader wherever it is blocked — mid-read on the
			// broken conn (Close errors it out) or on the queue receive
			// (the close ends its range) — then collect its verdict.
			c.nc.Close()
			close(queue)
			rf := <-readerDone
			un := append(rf.unacked, g)
			return append(un, ops[i+1:]...), err
		}
		queue <- inflight{g, t0, replies} // never blocks forever: the reader drains until close
	}
	close(queue)
	if rf := <-readerDone; rf.err != nil {
		return rf.unacked, rf.err
	}
	return nil, nil
}

// opCounts parses the INFO ops section's cmd_* counters.
func (c *client) opCounts() (opCounts, error) {
	c.writeCmd([]byte("INFO"), []byte("ops"))
	if err := c.bw.Flush(); err != nil {
		return opCounts{}, err
	}
	rep, err := server.ReadReply(c.br)
	if err != nil {
		return opCounts{}, err
	}
	if rep.IsErr() {
		return opCounts{}, fmt.Errorf("INFO: %s", rep.Str)
	}
	var out opCounts
	for _, line := range strings.Split(string(rep.Str), "\r\n") {
		name, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			continue
		}
		switch name {
		case "cmd_get":
			out.gets = n
		case "cmd_set":
			out.sets = n
		case "cmd_del":
			out.dels = n
		case "cmd_scan":
			out.scans = n
		}
	}
	return out, nil
}

func report(issued opCounts, results []*connResult, elapsed time.Duration, rate float64) {
	total := newConnResult()
	for _, r := range results {
		if r == nil {
			continue
		}
		total.get.Merge(r.get)
		total.set.Merge(r.set)
		total.del.Merge(r.del)
		total.scan.Merge(r.scan)
		total.mset.Merge(r.mset)
	}
	n := issued.gets + issued.sets + issued.dels + issued.scans
	fmt.Printf("issued %d wire ops in %v: %.0f ops/s", n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	if rate > 0 {
		fmt.Printf(" (offered %.0f ops/s)", rate)
	}
	fmt.Println()
	for _, row := range []struct {
		name string
		h    *metrics.Histogram
	}{{"get", total.get}, {"set", total.set}, {"del", total.del}, {"scan", total.scan}, {"mset", total.mset}} {
		if row.h.Count() == 0 {
			continue
		}
		fmt.Printf("  %-4s n=%-8d p50=%-10v p99=%-10v max=%v\n", row.name, row.h.Count(),
			row.h.Quantile(0.5), row.h.Quantile(0.99), row.h.Max())
	}
	rc, rr, rm := retryCounts.conn.Load(), retryCounts.readonly.Load(), retryCounts.maxconns.Load()
	if rc+rr+rm > 0 {
		fmt.Printf("  retries: conn=%d readonly=%d maxclients=%d\n", rc, rr, rm)
	}
}

// loadPhase SETs the initial dataset over conns pipelined connections,
// retrying each window's unacknowledged tail on retryable failures.
func loadPhase(addr string, gen *workload.Generator, keys, conns int, wait time.Duration, rt *retrier) error {
	const depth = 128
	type chunk struct{ lo, hi int }
	chunks := make(chan chunk, conns)
	per := (keys + conns - 1) / conns
	for lo := 0; lo < keys; lo += per {
		hi := lo + per
		if hi > keys {
			hi = keys
		}
		chunks <- chunk{lo, hi}
	}
	close(chunks)

	// LoadValue is deterministic per index, so workers can regenerate
	// values without sharing the generator.
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			nc, err := dialRetry(addr, wait)
			if err != nil {
				errs <- err
				return
			}
			defer nc.close()
			for ck := range chunks {
				for off := ck.lo; off < ck.hi; off += depth {
					end := off + depth
					if end > ck.hi {
						end = ck.hi
					}
					// acked advances past each SET whose reply was read, so
					// a retry replays only the unacknowledged tail
					// (LoadKey/LoadValue are deterministic per index — the
					// replayed pairs regenerate identically).
					acked := off
					attempt := 0
					for acked < end {
						err := func() error {
							for i := acked; i < end; i++ {
								nc.writeCmd([]byte("SET"), gen.LoadKey(i), gen.LoadValue(i))
							}
							if err := nc.bw.Flush(); err != nil {
								return err
							}
							for i := acked; i < end; i++ {
								if err := nc.readOK(); err != nil {
									return err
								}
								ackJournal.record('s', gen.LoadKey(i))
								acked = i + 1
							}
							return nil
						}()
						if err == nil {
							break
						}
						if rerr := rt.again(nc, err, &attempt); rerr != nil {
							errs <- rerr
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}
