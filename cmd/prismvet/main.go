// Command prismvet runs the repo's custom static analyzers (package
// internal/analysis) over the module tree and reports convention
// violations the compiler cannot see: *Locked call discipline, refcount
// and epoch pairing, WAL/slab ordering, copy-on-write publication, and
// shadowed-error drops.
//
// Usage:
//
//	prismvet [-json] [-tests=false] [-list] [path]
//
// path defaults to the enclosing module root (found via go.mod). Exit
// status is 1 when any diagnostic is reported, 2 on usage or I/O errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/prismdb/prismdb/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	tests := flag.Bool("tests", true, "analyze _test.go files too")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: prismvet [-json] [-tests=false] [-list] [path]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := flag.Arg(0)
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	if root == "" {
		wd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		root, err = analysis.ModuleRoot(wd)
		if err != nil {
			fatal(err)
		}
	}

	diags, err := analysis.CheckTree(root, *tests)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "prismvet: %d issue(s)\n", len(diags))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "prismvet:", err)
	os.Exit(2)
}
