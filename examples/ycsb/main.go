// Run a YCSB workload against PrismDB on tiered storage and report
// throughput, latency percentiles, and tier behaviour — a miniature version
// of the paper's §7.2 sweep for a single workload.
//
// Usage: go run ./examples/ycsb [-workload A] [-keys 20000] [-theta 0.99]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/prismdb/prismdb"
	"github.com/prismdb/prismdb/workload"
)

func main() {
	wName := flag.String("workload", "A", "YCSB workload (A-F)")
	keys := flag.Int("keys", 20000, "dataset keys")
	ops := flag.Int("ops", 40000, "operations to run")
	theta := flag.Float64("theta", 0.99, "zipfian parameter")
	valueSize := flag.Int("value", 1024, "object size in bytes")
	flag.Parse()

	wl, err := workload.YCSB((*wName)[0], *keys, *valueSize, *theta, 42)
	if err != nil {
		log.Fatal(err)
	}
	db, err := prismdb.Open(prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  int64(*keys) * int64(*valueSize+64),
		NVMFraction: 1.0 / 6, // the paper's default 1:5 NVM:QLC split
		DatasetKeys: *keys,
	}))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("loading %d keys of %dB...\n", *keys, *valueSize)
	gen := workload.NewGenerator(wl)
	for i := 0; i < *keys; i++ {
		if _, err := db.Put(gen.LoadKey(i), gen.LoadValue(i)); err != nil {
			log.Fatal(err)
		}
	}
	db.ResetStats()
	start := db.Elapsed()

	fmt.Printf("running %d ops of %s (zipf %.2f)...\n", *ops, wl.Name, *theta)
	var readLats, writeLats []time.Duration
	for i := 0; i < *ops; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpRead:
			_, _, lat, err := db.Get(op.Key)
			if err != nil {
				log.Fatal(err)
			}
			readLats = append(readLats, lat)
		case workload.OpUpdate, workload.OpInsert:
			lat, err := db.Put(op.Key, op.Value)
			if err != nil {
				log.Fatal(err)
			}
			writeLats = append(writeLats, lat)
		case workload.OpScan:
			if _, _, err := db.Scan(op.Key, op.ScanLen); err != nil {
				log.Fatal(err)
			}
		case workload.OpRMW:
			if _, _, _, err := db.Get(op.Key); err != nil {
				log.Fatal(err)
			}
			if _, err := db.Put(op.Key, op.Value); err != nil {
				log.Fatal(err)
			}
		}
	}

	elapsed := db.Elapsed() - start
	st := db.Stats()
	fmt.Printf("\nthroughput: %.1f Kops/s (virtual time %.2fs)\n",
		float64(*ops)/elapsed.Seconds()/1000, elapsed.Seconds())
	fmt.Printf("read  p50/p99: %v / %v\n", quantile(readLats, 0.5), quantile(readLats, 0.99))
	fmt.Printf("write p50/p99: %v / %v\n", quantile(writeLats, 0.5), quantile(writeLats, 0.99))
	total := st.GetDRAM + st.GetNVM + st.GetFlash
	if total > 0 {
		fmt.Printf("reads served: %.0f%% DRAM, %.0f%% NVM, %.0f%% flash\n",
			100*float64(st.GetDRAM)/float64(total),
			100*float64(st.GetNVM)/float64(total),
			100*float64(st.GetFlash)/float64(total))
	}
	fmt.Printf("compactions: %d (%d demoted, %d promoted, %d read-triggered)\n",
		st.Compactions, st.Demoted, st.Promoted, st.ReadTriggeredComps)
}

func quantile(lats []time.Duration, q float64) time.Duration {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	for i := 1; i < len(sorted); i++ { // insertion sort is fine at this scale
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
