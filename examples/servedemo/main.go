// Servedemo embeds the engine and the RESP server in one process: it
// serves a small PrismDB on an ephemeral loopback port, speaks a few
// commands to it as a client over a real socket (one pipelined batch, one
// flush), and shuts down gracefully — the smallest complete picture of the
// serving path. For the standalone binaries, see cmd/prismserver and
// cmd/prismload.
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/prismdb/prismdb"
	"github.com/prismdb/prismdb/internal/server"
)

func main() {
	db, err := prismdb.Open(prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  64 << 20,
		NVMFraction: 0.11,
	}))
	if err != nil {
		log.Fatal(err)
	}

	srv, err := server.New(server.Config{Engine: db})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	fmt.Printf("serving on %s\n", ln.Addr())

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)

	// One pipelined batch: the server parses all of it, executes in order,
	// and the replies come back in one flush.
	fmt.Fprintf(nc, "*3\r\n$3\r\nSET\r\n$6\r\nuser42\r\n$5\r\nhello\r\n")
	fmt.Fprintf(nc, "*3\r\n$3\r\nSET\r\n$6\r\nuser43\r\n$5\r\nworld\r\n")
	fmt.Fprintf(nc, "*2\r\n$3\r\nGET\r\n$6\r\nuser42\r\n")
	fmt.Fprintf(nc, "*3\r\n$4\r\nSCAN\r\n$4\r\nuser\r\n$2\r\n10\r\n")
	for _, want := range []string{"SET", "SET", "GET", "SCAN"} {
		rep, err := server.ReadReply(br)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case rep.IsErr():
			log.Fatalf("%s: server error: %s", want, rep.Str)
		case len(rep.Elems) > 0:
			fmt.Printf("%s → %d elements, first pair %q=%q\n",
				want, len(rep.Elems), rep.Elems[0].Str, rep.Elems[1].Str)
		default:
			fmt.Printf("%s → %q\n", want, rep.Str)
		}
	}

	if err := srv.Shutdown(time.Second); err != nil {
		log.Fatal(err)
	}
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	// After Close, operations fail deterministically.
	if _, err := db.Put([]byte("k"), []byte("v")); err == prismdb.ErrClosed {
		fmt.Println("after Close: Put →", err)
	}
}
