// Run a synthetic Twitter production trace (Table 5 of the paper) against
// PrismDB on tiered storage, then report throughput, put latency, and the
// QLC endurance/TCO outlook (Fig 12): how many years the flash tier lasts
// at this workload's write intensity.
//
// Usage: go run ./examples/twittercache [-trace cluster51] [-keys 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/prismdb/prismdb"
	"github.com/prismdb/prismdb/workload"
)

func main() {
	trace := flag.String("trace", "cluster51", "cluster39 (write-heavy) | cluster19 (mixed, tiny objects) | cluster51 (read-heavy)")
	keys := flag.Int("keys", 20000, "dataset keys")
	ops := flag.Int("ops", 40000, "operations to run")
	flag.Parse()

	wl, err := workload.Twitter(*trace, *keys, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s: %.0f%% reads, ~%dB objects, %s key distribution\n",
		wl.Name, wl.Mix.Read*100, wl.ValueSize,
		map[workload.Distribution]string{
			workload.DistZipfian: "zipfian",
			workload.DistUniform: "uniform",
		}[wl.Dist])

	flash := prismdb.QLCDevice(int64(*keys) * int64(wl.ValueSize+64) * 4)
	cfg := prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  int64(*keys) * int64(wl.ValueSize+64),
		NVMFraction: 1.0 / 6,
		DatasetKeys: *keys,
	})
	cfg.Flash = flash // keep a handle for wear accounting
	db, err := prismdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}

	gen := workload.NewGenerator(wl)
	for i := 0; i < *keys; i++ {
		if _, err := db.Put(gen.LoadKey(i), gen.LoadValue(i)); err != nil {
			log.Fatal(err)
		}
	}
	db.AdvanceAll()
	db.ResetStats()
	wearBefore := flash.WearBytes()
	start := db.Elapsed()

	var putLatTotal, putCount int64
	for i := 0; i < *ops; i++ {
		op := gen.Next()
		switch op.Kind {
		case workload.OpRead:
			if _, _, _, err := db.Get(op.Key); err != nil {
				log.Fatal(err)
			}
		default:
			lat, err := db.Put(op.Key, op.Value)
			if err != nil {
				log.Fatal(err)
			}
			putLatTotal += int64(lat)
			putCount++
		}
	}

	elapsed := db.Elapsed() - start
	st := db.Stats()
	fmt.Printf("\nthroughput: %.1f Kops/s\n", float64(*ops)/elapsed.Seconds()/1000)
	if putCount > 0 {
		fmt.Printf("avg put latency: %.1fµs\n", float64(putLatTotal)/float64(putCount)/1000)
	}
	fmt.Printf("reads from NVM/DRAM: %.0f%%\n", 100*st.NVMReadRatio())
	fmt.Printf("compactions: %d (demoted %d, promoted %d)\n",
		st.Compactions, st.Demoted, st.Promoted)

	// Endurance model (Fig 12): measure the workload's flash write
	// amplification, then project lifetime for a production 600 GB QLC
	// deployment serving 50K ops/s of this trace.
	wearBytes := flash.WearBytes() - wearBefore
	wa := 1.0
	if clientBytes := float64(putCount) * float64(wl.ValueSize); clientBytes > 0 {
		wa = float64(wearBytes) / clientBytes
	}
	prod := prismdb.QLCDevice(600 << 30)
	bytesPerDay := 50000.0 * (1 - wl.Mix.Read) * float64(wl.ValueSize) * wa * 86400
	years := prod.LifetimeYears(bytesPerDay)
	fmt.Printf("\nendurance: %.1f MB written to QLC (write amplification %.1f)\n",
		float64(wearBytes)/(1<<20), wa)
	if *keys < 100000 {
		fmt.Println("(small datasets inflate write amplification: each range merge " +
			"rewrites a whole SST to move a handful of objects — see EXPERIMENTS.md)")
	}
	if years > 10 {
		fmt.Printf("projected QLC lifetime at this intensity: >10 years (endurance is not a concern)\n")
	} else {
		fmt.Printf("projected QLC lifetime at this intensity: %.1f years\n", years)
		if years < 3 {
			fmt.Println("note: below the 3-5y replacement cycle — consider TLC for this workload (§7.2)")
		}
	}
}
