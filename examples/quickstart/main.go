// Quickstart: open a two-tier PrismDB, write, read, scan, delete, and look
// at where the data physically lives.
package main

import (
	"fmt"
	"log"

	"github.com/prismdb/prismdb"
)

func main() {
	// A 64 MiB database with ~11% of capacity on NVM (Optane-class) and
	// the rest on QLC flash — the paper's cost-efficient "het10" point.
	db, err := prismdb.Open(prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  64 << 20,
		NVMFraction: 0.11,
		DatasetKeys: 50_000,
		Partitions:  4,
	}))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes go synchronously to NVM slabs: no WAL, no memtable.
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user%06d", i)
		value := fmt.Sprintf("profile-data-for-%06d", i)
		if _, err := db.Put([]byte(key), []byte(value)); err != nil {
			log.Fatal(err)
		}
	}

	// Reads report which tier served them and the simulated latency.
	v, tier, lat, err := db.Get([]byte("user000042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Get(user000042) = %q  served from %s in %v\n", v, tier, lat)

	// Range scans merge the NVM index with the flash SST log.
	kvs, _, err := db.Scan([]byte("user000100"), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Scan from user000100:")
	for _, kv := range kvs {
		fmt.Printf("  %s = %s\n", kv.Key, kv.Value)
	}

	// Deletes write tombstones when an older version may live on flash.
	if _, err := db.Delete([]byte("user000042")); err != nil {
		log.Fatal(err)
	}
	if _, tier, _, _ := db.Get([]byte("user000042")); tier == prismdb.TierMiss {
		fmt.Println("user000042 deleted")
	}

	st := db.Stats()
	used, budget := db.NVMUsage()
	fmt.Printf("\nobjects: %d on NVM, %d on flash\n", st.NVMObjects, st.FlashObjects)
	fmt.Printf("NVM usage: %d / %d bytes; compactions so far: %d\n",
		used, budget, st.Compactions)
	fmt.Printf("virtual time elapsed: %v\n", db.Elapsed())
}
