// Sweep the NVM fraction of a two-tier PrismDB deployment and print the
// cost-vs-throughput Pareto curve (the shape of Fig 9): how much faster does
// the database get per extra dollar of Optane?
//
// Usage: go run ./examples/tieringexplorer [-keys 15000] [-ops 20000]
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/prismdb/prismdb"
	"github.com/prismdb/prismdb/workload"
)

func main() {
	keys := flag.Int("keys", 15000, "dataset keys")
	ops := flag.Int("ops", 20000, "ops per configuration")
	theta := flag.Float64("theta", 0.99, "zipfian parameter")
	flag.Parse()

	fmt.Println("NVM%   $/GB    Kops/s   p50-read   p99-read   reads from fast tiers")
	for _, frac := range []float64{0.05, 0.11, 0.20, 0.35, 0.50} {
		tput, p50, p99, fastRatio := run(*keys, *ops, *theta, frac)
		costPerGB := frac*2.5 + (1-frac)*0.1
		fmt.Printf("%4.0f%%  $%.2f   %6.1f   %8s   %8s   %.0f%%\n",
			frac*100, costPerGB, tput, p50, p99, fastRatio*100)
	}
	fmt.Println("\n(device prices: NVM $2.50/GB, QLC $0.10/GB — Table 1 of the paper)")
}

func run(keys, ops int, theta, frac float64) (tputK float64, p50, p99 string, fastRatio float64) {
	wl, err := workload.YCSB('A', keys, 1024, theta, 11)
	if err != nil {
		log.Fatal(err)
	}
	db, err := prismdb.Open(prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  int64(keys) * 1088,
		NVMFraction: frac,
		DatasetKeys: keys,
	}))
	if err != nil {
		log.Fatal(err)
	}
	gen := workload.NewGenerator(wl)
	for i := 0; i < keys; i++ {
		if _, err := db.Put(gen.LoadKey(i), gen.LoadValue(i)); err != nil {
			log.Fatal(err)
		}
	}
	db.AdvanceAll()
	db.ResetStats()
	start := db.Elapsed()

	var readLats []int64
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if op.Kind == workload.OpRead {
			_, _, lat, err := db.Get(op.Key)
			if err != nil {
				log.Fatal(err)
			}
			readLats = append(readLats, int64(lat))
		} else {
			if _, err := db.Put(op.Key, op.Value); err != nil {
				log.Fatal(err)
			}
		}
	}
	elapsed := db.Elapsed() - start
	st := db.Stats()
	tputK = float64(ops) / elapsed.Seconds() / 1000

	// Exact quantiles over the collected latencies.
	for i := 1; i < len(readLats); i++ {
		for j := i; j > 0 && readLats[j] < readLats[j-1]; j-- {
			readLats[j], readLats[j-1] = readLats[j-1], readLats[j]
		}
	}
	q := func(f float64) string {
		if len(readLats) == 0 {
			return "-"
		}
		idx := int(f * float64(len(readLats)))
		if idx >= len(readLats) {
			idx = len(readLats) - 1
		}
		return fmt.Sprintf("%.0fµs", float64(readLats[idx])/1000)
	}
	return tputK, q(0.5), q(0.99), st.NVMReadRatio()
}
