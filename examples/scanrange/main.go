// Scanrange: stream a key range through PrismDB's snapshot-consistent
// iterator on a range-partitioned database, and show the two properties the
// iterator exists for — the view is frozen at creation (concurrent deletes
// and overwrites don't leak into an open scan), and all the scan's virtual
// time lands on the issuing partition's clock.
package main

import (
	"fmt"
	"log"

	"github.com/prismdb/prismdb"
)

func main() {
	cfg := prismdb.RecommendedConfig(prismdb.TierSpec{
		TotalBytes:  32 << 20,
		NVMFraction: 0.16,
		DatasetKeys: 20_000,
		Partitions:  4,
	})
	// Range partitioning keeps each partition a contiguous key span —
	// the recommended layout for scan-heavy workloads (§4.1).
	cfg.RangePartitioning = true
	db, err := prismdb.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	key := func(i int) string { return fmt.Sprintf("user%08d", i) }
	pad := make([]byte, 600) // big enough that the NVM tier overflows
	for i := 0; i < 10_000; i++ {
		if _, err := db.Put([]byte(key(i)), append([]byte(fmt.Sprintf("v1-%d-", i)), pad...)); err != nil {
			log.Fatal(err)
		}
	}
	st := db.Stats()
	fmt.Printf("loaded 10000 keys: %d on NVM, %d on flash\n", st.NVMObjects, st.FlashObjects)

	// Open an iterator mid-range. "user00004999x" is not a canonical key:
	// the iterator positions from each partition's actual data, so odd
	// start bytes can't skip partitions.
	it := db.NewIterator([]byte("user00004999x"), 0)

	// Mutate the range while the scan is open: the pinned snapshot keeps
	// the iterator's view frozen at creation time.
	for i := 5000; i < 5200; i += 2 {
		if _, err := db.Delete([]byte(key(i))); err != nil {
			log.Fatal(err)
		}
	}
	for i := 5001; i < 5200; i += 2 {
		if _, err := db.Put([]byte(key(i)), []byte("v2-overwritten")); err != nil {
			log.Fatal(err)
		}
	}

	count, overwrites := 0, 0
	first, last := "", ""
	for ; it.Valid() && count < 200; it.Next() {
		if first == "" {
			first = string(it.Key())
		}
		last = string(it.Key())
		if string(it.Value()) == "v2-overwritten" { // impossible: snapshot predates it
			overwrites++
		}
		count++
	}
	lat := it.Latency()
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d keys [%s .. %s] in %v (virtual)\n", count, first, last, lat)
	fmt.Printf("deleted-mid-scan keys seen: all (snapshot), overwritten values seen: %d (want 0)\n", overwrites)

	// The same range scanned after Close sees the mutations.
	kvs, _, err := db.Scan([]byte(key(5000)), 100)
	if err != nil {
		log.Fatal(err)
	}
	fresh := 0
	for _, kv := range kvs {
		if string(kv.Value) == "v2-overwritten" {
			fresh++
		}
	}
	fmt.Printf("after close, Scan over the same range sees %d overwritten values\n", fresh)
}
