// Package prismdb is a key-value store for two-tier NVMe storage, a Go
// reproduction of "Efficient Compactions Between Storage Tiers with
// PrismDB" (Raina, Lu, Cidon, Freedman — ASPLOS 2023).
//
// PrismDB keeps hot objects in slab files on a fast NVM tier (fast random
// writes, in-place updates) and cold objects in a sorted log of SST files
// on a cheap dense-flash tier (large sequential writes). A clock-based
// tracker estimates object popularity, a mapper enforces a pinning
// threshold over the tracker's clock-value distribution, and the
// multi-tiered storage compaction (MSC) metric — benefit (coldness demoted)
// over cost (flash I/O per migrated byte) — selects which key ranges to
// compact between tiers. Under read-heavy workloads, read-triggered
// compactions promote hot flash objects back to NVM.
//
// The storage tiers are simulated NVMe devices (package simdev) with the
// latency, bandwidth, endurance, and cost parameters of the paper's Intel
// Optane P5800X and Intel 660p QLC drives; all engine time runs on virtual
// clocks, so throughput and latency results are reproducible and fast to
// generate while preserving every queueing and contention effect the paper
// depends on.
//
// Quickstart:
//
//	cfg := prismdb.RecommendedConfig(prismdb.TierSpec{
//		TotalBytes:  1 << 30, // 1 GiB database
//		NVMFraction: 0.11,    // ~10% NVM, 90% QLC — the paper's het10
//	})
//	db, err := prismdb.Open(cfg)
//	...
//	db.Put([]byte("user42"), []byte("v1"))
//	v, tier, lat, err := db.Get([]byte("user42"))
//
// # Performance
//
// The foreground read path is allocation-free and sublinear. Each
// partition's manifest publishes its live SST file set as an immutable
// copy-on-write snapshot behind an atomic pointer, refcounted once per
// snapshot: a Get acquires the snapshot with two atomic operations, no
// lock, and no per-table refcount traffic, and the disjoint sorted tables
// are probed with a single binary search instead of a linear overlap scan.
// NVM slab reads land in per-partition recycled slot buffers; GetBuf lets
// the caller supply the value buffer, making an NVM- or page-cache-hit
// read perform zero heap allocations — with no lock taken at all (see the
// Concurrency section); testing.AllocsPerRun guards in internal/core pin
// this at 0 allocs/op, including after concurrent churn. Get is GetBuf
// with a nil buffer: one allocation for the returned value.
//
// Partitions are shared-nothing, so harnesses can drive them in parallel:
// the bench package's parallel driver runs one worker goroutine per
// partition over sharded op streams (routed via PartitionOf) and merges
// per-worker latency histograms at the end. Per-partition virtual-time
// causality is exact; cross-partition device and CPU queueing interleaves
// within a small bounded time window (the simulated devices backfill idle
// lane time for slightly out-of-order arrivals, so simulated results stay
// within a few percent of the serial lockstep driver's). Use the serial
// driver (the default) for bit-reproducible virtual-time experiments and
// the parallel driver (`prismbench -parallel`, or Setup.ParallelDriver)
// for wall-clock throughput.
//
// To reproduce the benchmark numbers: `make bench` (or
// `go test -run '^$' -bench . -benchmem ./bench/...`) runs the harness
// benchmarks, including BenchmarkYCSBBSerial/BenchmarkYCSBBParallel and
// BenchmarkYCSBESerial/BenchmarkYCSBEParallel — the YCSB-B read-heavy and
// YCSB-E scan-heavy mixes on 8 partitions through each driver — and
// records the results in BENCH_<date>.json for the repo's perf
// trajectory. BenchmarkContendedGets (and the serving-side
// BenchmarkServerContendedGets) track the contended-read rows below;
// `make bench-smoke` runs one fast iteration of each.
//
// # Concurrency
//
// The paper's engine is shared-nothing with one thread per partition, so it
// serializes everything behind the partition lock. This implementation
// serves a goroutine-per-connection front end, where a hot partition would
// turn that lock into a convoy around every ~µs read — so the point-read
// path is lock-free:
//
//   - Get and GetBuf (and therefore MGET on the server) never take the
//     partition lock. Each partition publishes an immutable read view
//     behind an atomic pointer: a copy-on-write B-tree root (package btree
//     path-copies every insert and delete, so a loaded root is a frozen
//     index) paired with the refcounted manifest snapshot of the flash file
//     set. A reader acquires the view with two atomics, resolves the key
//     against the frozen index or the snapshot's tables, and releases it.
//
//   - Publication rule: every mutation that changes what a reader could
//     observe structurally — a B-tree insert/delete, a manifest change, a
//     compaction commit chunk — republishes the view under the partition
//     lock before the operation returns, so a GET issued after a PUT's
//     reply always observes that PUT (read-your-writes). Within a commit
//     the manifest always installs before B-tree entries drop, so any
//     published pairing finds a demoted key on at least one side, newest
//     version winning. In-place slab updates do not republish: readers
//     pick the new bytes straight off the (internally synchronized) slab
//     file.
//
//   - NVM slot reads are validated, not pinned: a reader trusts a slot
//     only if the decoded record's key equals the requested key. A slot
//     freed, recycled, or mid-move under a stale view fails validation;
//     the reader retries against the current view and, after a few
//     failures, falls back to the locked path (churn that hot is already
//     serializing on the writer side). Scans and both compaction modes
//     keep their existing locking.
//
//   - Writes are BATCHED PER PARTITION (Options.WriteMode, default
//     WriteAsync). An uncontended Put or Delete — intent ring empty, lock
//     free — applies directly as a batch of one, folding read state on
//     the batch cadence instead of per op. Under contention the op frames
//     a write intent into the partition's bounded lock-free MPSC ring
//     (Vyukov-style, 1024 slots; a producer that finds it full parks on a
//     condvar rather than dropping — writes are lossless) and waits for
//     the owner goroutine's completion signal. The owner drains up to 128
//     intents at a time and applies the whole batch as ONE critical
//     section: one lock acquisition, one B-tree spine copy (same-epoch
//     nodes mutate in place between snapshots), one WAL group append
//     carrying every record (one fsync under group commit), and one
//     read-view republication — so N concurrent writers cost ~1/N of the
//     per-operation locking, logging, and publication work. Ack semantics
//     are unchanged: the caller unblocks only after its own op is applied
//     (and durable, per Options.WALSync), each op is charged its own
//     virtual-time interval on the partition clock exactly as if applied
//     serially, and the view republishes before any ack — read-your-
//     writes holds. A serial caller stays on the direct path and matches
//     WriteSync virtual time within a few percent. WriteSync keeps the
//     legacy take-the-lock-yourself path (bit-reproducible serial
//     benches). PutBatch (the server's MSET and pipelined-SET fast path)
//     hands a whole group of pairs to the queues in one call.
//     Stats reports WriteBatches, batch-size percentiles, queue depth,
//     and ProducerParks; the server's INFO writes section mirrors them.
//
//   - Virtual-clock semantics for off-lock reads: each GET runs a private
//     clock seeded from the partition's published frontier (an atomic
//     max of the worker clock and every completed read's end time),
//     charges its CPU and device time there, and folds the end time back
//     with one atomic max. Serially that reproduces the locked path's
//     sequencing exactly — each op begins where the previous one ended —
//     while concurrent GETs overlap in virtual time and queue only on the
//     simulated device channels, as real concurrent requests would.
//
//   - Read stats (Gets, tier counters, BloomFalsePositives) accumulate in
//     sharded atomic counters, and popularity touches in a bounded
//     lock-free ring (512 entries; a full ring drops touches rather than
//     delaying a read). Whoever next takes the partition lock — any write,
//     a stats call, or a reader's periodic non-blocking TryLock (every 16
//     reads) — drains both into the guarded stats, tracker, buckets, and
//     read-trigger machine. Popularity and trigger staleness is therefore
//     bounded by roughly one drain cadence per reader plus one ring, and
//     collapses to near zero under any write traffic.
//
// # Iterators
//
// Scans are streamed, not materialized: NewIterator returns the paper's
// two-level iterator (§6) — per partition, a cursor over the NVM B-tree
// index merged with block-streaming cursors over the flash SST log, NVM
// versions shadowing flash on ties and tombstones annihilating at the
// merge point — lifted to the DB level with a k-way heap merge across
// partitions, identical under range and hash partitioning. Scan is a thin
// wrapper that drains an iterator into a []KV.
//
// Consistency model: creating an iterator pins, per partition, the current
// manifest snapshot (the flash file set, refcounted so compactions cannot
// delete SSTs mid-scan) and a slab epoch (NVM slots freed by concurrent
// deletes or compaction demotions stay readable and unrecycled, and
// in-place updates go copy-on-write, until the iterator closes). The
// iterator therefore observes each key exactly once with its value as of
// creation, across concurrent puts, deletes, and compactions; partitions
// pin sequentially at creation, so the consistency point is per-partition,
// as usual for per-shard snapshots. A limitHint-bounded iterator (what
// Scan uses) caps its per-partition snapshot work at the hint and refills
// from the live index if drained past it — results are never truncated,
// but keys inserted after creation may then appear past the hint.
//
// Clock ownership: a scan charges every device read and CPU cost — across
// however many partitions its merge reads — to a private clock seeded
// from the issuing partition (the partition owning the start key), folded
// back into that partition's worker clock at Close. Foreign partitions'
// clocks never advance on behalf of someone else's scan, which is what
// makes scan-heavy workloads sound under the parallel one-worker-per-
// partition driver: per-partition virtual-time causality stays exact, and
// serial vs parallel YCSB-E throughput agrees within a few percent. A warm
// Iterator.Next is zero-allocation on the NVM path (keys alias the B-tree
// snapshot, values land in a reused buffer), pinned by a
// testing.AllocsPerRun guard like the read path's.
//
// # Compaction
//
// Compactions — the demotion merges that move cold objects from NVM to
// flash when usage crosses the high watermark, and the read-triggered
// promotion merges that bring hot flash objects back — run in one of two
// execution modes (Options.CompactionMode):
//
// CompactionAsync (default): each partition owns a background worker. The
// trigger (watermark crossing, read-trigger state machine) enqueues a job
// and returns, so a foreground SET never pays a multi-SST merge in
// wall-clock time. The worker splits every merge round into prepare
// (classify and read the demoting records under the partition lock, pin a
// manifest snapshot and a slab reclamation epoch), execute (read the
// overlapping SSTs, merge, and write the output SSTs with the lock
// released — foreground gets/puts/scans proceed concurrently), and commit
// (re-take the lock and reconcile: a key overwritten or deleted while the
// merge ran keeps its newer foreground version — the pinned epoch forces
// such writes copy-on-write, so an unchanged slot location proves an
// unchanged record — and everything else flips index/bucket/tracker/
// manifest state exactly as an inline merge would; skipped keys count in
// Stats.CommitConflicts). Writers whose space-admission credit runs dry
// while reclaim is still inside an uncommitted merge block until the next
// commit (Stats.CompactionHardStalls), so writes can never outrun the
// worker unboundedly.
//
// CompactionSync: the whole merge runs inline under the partition lock at
// the trigger point. Virtual-time results are bit-reproducible, which the
// serial bench drivers and deterministic tests rely on; the cost is that
// one unlucky foreground write absorbs the merge's wall-clock time and
// every other client on the partition queues behind it.
//
// Both modes share the same virtual-time model: compaction I/O runs on a
// background-priority clock serialized per partition (a new job starts no
// earlier than the previous one's virtual completion), and each round's
// reclaimed space only becomes admissible when the round's virtual I/O
// completes — writes that outrun compaction stall (§4.2). Knobs that
// matter: HighWatermark/LowWatermark set the trigger point and the
// per-job demotion target (their gap bounds how much one job does),
// PinningThreshold and TrackerCapacity decide what demotes at all,
// RangeFiles/PowerK/Policy shape range selection, and Promotions plus
// ReadTrigger govern the promotion side. DrainCompactions (and
// AdvanceAll, which calls it) waits for background workers to go idle —
// call it before asserting on Stats or NVM usage in tests and harness
// phase boundaries.
//
// # Durability
//
// By default the database is a simulation: file bytes live in memory and
// vanish with the process, which keeps tests and experiments deterministic.
// Setting Options.DataDir turns on the real-file backend (internal/storage)
// without changing any virtual-time behavior: the simulated devices keep
// modeling latency and queueing exactly as before, but every slab and SST
// byte is delegated to a real file under the data directory, and the engine
// adds the three classic pieces of crash safety on top:
//
//   - A group-commit write-ahead log (wal/). Writers frame put/del records
//     into a buffer under a short lock; a single flusher turns whatever
//     accumulated into one write and one fdatasync, so concurrent writers
//     share fsyncs instead of paying one each. Options.WALSync picks the
//     acknowledgement contract: SyncEvery (default) acks only after the
//     record's fsync — kill -9 loses nothing acknowledged; SyncGroup acks
//     immediately and fsyncs every WALFsyncEvery records or WALFsyncInterval
//     — a crash loses at most that window; SyncNone leaves durability to the
//     OS (a process crash still loses nothing, since records reach the page
//     cache promptly; only power loss is exposed).
//
//   - A journaled manifest (MANIFEST-NNNNNN + CURRENT). Each compaction
//     commit appends one fsynced add/remove edit, so commits are
//     crash-atomic: after a crash the journal contains the whole edit or
//     none of it. The journal compacts into a fresh snapshot file once it
//     grows, with an atomic rename swinging CURRENT.
//
//   - Recovery on Open. The manifest journal is replayed (a torn final edit
//     is dropped — it was never acknowledged), SSTs not in the journal's
//     live set are deleted as orphans of uncommitted compactions, slab and
//     SST files are re-adopted by the devices, and the WAL tail is replayed
//     through the ordinary write paths — tolerating a torn final record,
//     but failing loudly on checksum corruption anywhere else. Replay is
//     idempotent because slab writes land before their WAL records: the
//     recovered state is always at least as new as the log.
//
// There is deliberately no memtable flush: a checkpoint is just "fsync the
// slab files", which the WAL triggers at each segment rotation before
// pruning the covered segments, bounding both log size and recovery time.
// A LOCK file (flock) excludes concurrent opens of one data directory;
// Close flushes and fsyncs the WAL, checkpoints, prunes, and releases the
// lock, so a clean reopen replays nothing. PersistenceStats (and the
// server's INFO persistence section) reports WAL bytes/fsyncs, group-commit
// batch size, checkpoint counts, and what recovery found. The
// fault-injection hooks (Options.Faults, FaultInjector) can fail, truncate,
// or tear the Nth I/O to exercise these paths deterministically.
//
// # Robustness
//
// A durable DB tracks its failure-domain state in a sticky three-state
// machine — Healthy → Degraded → Failed — exposed by Health (and the
// server's HEALTH command and INFO health section):
//
//   - Degraded (read-only): the first sticky storage error — a WAL append
//     or fsync failure, a manifest journal write failure, a checkpoint
//     fsync failure, ENOSPC, or a declared I/O stall — makes further write
//     acknowledgements promises the storage can't keep, so every mutation
//     from that point fails fast with ErrReadOnly (the server answers
//     -READONLY) while the lock-free read path keeps serving from the
//     published views. Nothing is ever acknowledged after a failed fsync:
//     in-flight waiters are woken with the error, queued write intents
//     fail before touching state, and parked producers are released.
//     Background compactions stand down. The state is sticky until the
//     process reopens the data directory — recovery is a reopen (all
//     acknowledged writes are on disk or in the WAL), not an in-place
//     retry.
//
//   - Failed: the background scrubber (Options.ScrubInterval) has proven
//     unrecoverable data loss — an NVM slab slot failed its stored CRC.
//     Slab slots hold the newest version of their objects, so there is no
//     redundant copy and a reopen cannot restore them; the state says so.
//     A rotted SST block, by contrast, only quarantines its table
//     (journaled out of the manifest, file preserved for post-mortem) and
//     reads fall through to other tiers.
//
// An I/O stall watchdog (Options.IOStallDeadline) covers the failure mode
// errors never report: a write that simply never returns. The WAL flusher
// heartbeats around every segment write, fsync, and checkpoint; when an
// I/O exceeds the deadline the watchdog declares the log stalled, fails
// all durability waiters with a typed error (ErrIOStalled), and degrades
// the DB — bounded unavailability instead of an unbounded hang.
//
// The fault-injection hooks exercise all of this deterministically:
// FaultENOSPC simulates a full disk, FaultInjector.ArmStall wedges one
// I/O for a chosen duration, and ArmScoped pins a fault to one failure
// domain (wal, journal, slab, sst). See the README's "Failure modes &
// degraded operation" matrix for the full fault → state → client-visible
// behavior table.
//
// # Serving
//
// The repo ships a network front end so the engine can serve real traffic:
// cmd/prismserver exposes a RESP2-subset TCP protocol (GET, SET, DEL, MGET,
// SCAN, PING, INFO — any Redis client or plain telnet works) over a
// RecommendedConfig database, and cmd/prismload is a matching YCSB-mix
// load generator with explicit pipelining and open-/closed-loop modes.
//
// The server runs one goroutine per connection over the shared-nothing
// partitions and keeps the wire path as lean as the engine's read path:
// commands are parsed from a per-connection arena, reads ride the GetBuf
// zero-allocation path through a per-connection scratch buffer, and
// replies accumulate in the connection's write buffer, flushed only when
// the parser would block on the socket — a pipelined batch of K commands
// costs one read, K engine calls, and one write. INFO reports engine
// Stats, tier hit ratios, and per-op latency distributions in both
// wall-clock and simulated virtual time.
//
// Shutdown is deterministic: Close marks the database closed, after which
// every operation returns ErrClosed and open iterators fail on their next
// positioning call — the server drains connections first, then closes the
// DB, so stragglers get a clean error instead of racing teardown. See the
// README for server and load-generator usage.
//
// # Observability
//
// The telemetry layer (internal/obs) is always on: every DB carries a
// lock-free metrics registry whose hot-path instruments — padded atomic
// counters, gauges, and log-bucketed histograms — cost a few atomic adds
// per operation and zero heap allocations (AllocsPerRun guards pin the
// instrumented read, write, and server op loops at 0 allocs/op). The
// engine records WAL fsync latency and group-commit batch size, write-path
// batch size / queue depth / producer parks, compaction round duration,
// read-view retries, and iterator epoch pins; the server adds live per-op
// wall and virtual latency, reply flush sizes, and command/error/connection
// counters.
//
// Share one registry across the stack by passing the same MetricsRegistry
// as Options.Metrics and server Config.Metrics (cmd/prismserver does this);
// nil fields create private registries, so instrumentation never turns
// off. Exposition: NewMetricsMux serves Prometheus text-format /metrics,
// the JSON event tail at /events, and net/http/pprof under /debug/pprof/ —
// `prismserver -metrics-addr :9090` mounts it. The server's INFO sections
// render from the same instruments, so INFO and /metrics can never
// disagree.
//
// Structured events ride an EventLog (Options.Events / Config.Events): a
// bounded ring of pre-rendered JSON lines recording compaction rounds,
// checkpoints, WAL rotations, recovery outcomes, and write stalls —
// surfaced by INFO events and /events.
//
// Per-op tracing samples roughly one in Config.TraceSample commands (64 by
// default) through the op's stage pipeline — parse, dispatch, queue wait,
// apply, WAL append, fsync wait, reply flush — via PutTraced/DeleteTraced
// and an OpTrace. The slowest sampled ops are retained in a ring served by
// the server's SLOWLOG GET|LEN|RESET command (Redis-shaped entries with a
// stage breakdown) and the most recent by TRACE <n>.
package prismdb

import (
	"net/http"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/msc"
	"github.com/prismdb/prismdb/internal/obs"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/storage"
	"github.com/prismdb/prismdb/internal/tracker"
)

// Re-exported option and result types.
type (
	// Options configure a DB; see core.Options for field semantics.
	Options = core.Options
	// Stats are cumulative engine counters.
	Stats = core.Stats
	// Tier identifies the level of the storage hierarchy that served a
	// read: DRAM (page cache), NVM, flash, or a miss.
	Tier = core.Tier
	// KV is a scan result element.
	KV = core.KV
	// Iterator streams live objects in global key order with snapshot
	// consistency; see the package docs' Iterators section.
	Iterator = core.Iterator
	// CPUCosts is the engine's CPU cost model.
	CPUCosts = core.CPUCosts
	// CompactionMode selects background (async) or inline (sync)
	// compaction execution; see the package docs' Compaction section.
	CompactionMode = core.CompactionMode
	// WriteMode selects the owner-goroutine (async) or legacy locked
	// (sync) write path; see the package docs' Concurrency section.
	WriteMode = core.WriteMode
	// ReadTriggerOptions configure read-triggered compactions.
	ReadTriggerOptions = core.ReadTriggerOptions
	// Device is a simulated NVMe device.
	Device = simdev.Device
	// DeviceParams describe a simulated device.
	DeviceParams = simdev.Params
	// PageCache models the OS page cache.
	PageCache = simdev.PageCache
	// CompactionPolicy selects MSC scoring (approx, precise, random).
	CompactionPolicy = msc.Policy
	// SyncMode picks the WAL's durability-vs-latency contract; see the
	// package docs' Durability section.
	SyncMode = storage.SyncMode
	// PersistenceStats reports the durability layer's counters (WAL
	// volume, fsyncs, group-commit batch size, recovery findings).
	PersistenceStats = core.PersistenceStats
	// FaultInjector deterministically fails, short-writes, or tears the
	// Nth file I/O of a durable DB (Options.Faults) — the hook behind the
	// crash-recovery tests.
	FaultInjector = storage.FaultInjector
	// FaultMode selects what an armed FaultInjector does when it fires.
	FaultMode = storage.FaultMode
	// FaultScope pins an armed fault to one failure domain of the data
	// directory (wal, journal, slab, sst); the zero value matches any I/O.
	FaultScope = storage.FaultScope
	// Health is a point-in-time snapshot of a DB's failure-domain state;
	// see the package docs' Robustness section.
	Health = core.Health
	// HealthState is the sticky Healthy → Degraded → Failed machine's
	// position.
	HealthState = core.HealthState
	// MetricsRegistry is the lock-free metrics registry behind /metrics
	// and INFO; see the package docs' Observability section. Pass one
	// instance as Options.Metrics and the server Config's Metrics to
	// expose the whole stack on a single endpoint.
	MetricsRegistry = obs.Registry
	// EventLog is the bounded structured event log (JSON lines) shared
	// between the engine and the server via Options.Events.
	EventLog = obs.EventLog
	// OpTrace receives a traced write's engine-stage durations
	// (queue wait, apply, WAL append, fsync wait) from PutTraced and
	// DeleteTraced.
	OpTrace = core.OpTrace
)

// Tiers a read can be served from.
const (
	TierDRAM  = core.TierDRAM
	TierNVM   = core.TierNVM
	TierFlash = core.TierFlash
	TierMiss  = core.TierMiss
)

// Compaction policies (Fig 6).
const (
	ApproxMSC  = msc.Approx
	PreciseMSC = msc.Precise
	RandomSel  = msc.Random
)

// Compaction execution modes.
const (
	// CompactionAsync runs compactions on per-partition background
	// workers (the default).
	CompactionAsync = core.CompactionAsync
	// CompactionSync runs compactions inline under the partition lock
	// (bit-reproducible virtual time; deterministic tests and serial
	// benches).
	CompactionSync = core.CompactionSync
)

// Write-path execution modes (Options.WriteMode).
const (
	// WriteAsync routes each partition's mutations through its owner
	// goroutine: writers enqueue intents into a bounded MPSC ring, the
	// owner applies a whole batch in one critical section with one WAL
	// group append and one view republication (the default).
	WriteAsync = core.WriteAsync
	// WriteSync keeps the legacy path: each writer takes the partition
	// lock, applies, logs, and republishes its own operation.
	WriteSync = core.WriteSync
)

// ParseWriteMode parses the -write-mode flag spellings: "async" (aliases
// "queue", "owner") or "sync" (alias "locked").
func ParseWriteMode(s string) (WriteMode, error) { return core.ParseWriteMode(s) }

// WAL sync modes (Options.WALSync).
const (
	// SyncEvery acknowledges a write only after its WAL record is
	// fdatasync'd; group commit batches concurrent writers into one fsync.
	SyncEvery = storage.SyncEvery
	// SyncGroup acknowledges immediately and fsyncs in the background
	// every WALFsyncEvery records or WALFsyncInterval.
	SyncGroup = storage.SyncGroup
	// SyncNone never fsyncs during operation (Close still does).
	SyncNone = storage.SyncNone
)

// Fault-injection modes (FaultInjector.Arm).
const (
	// FaultError fails the I/O outright.
	FaultError = storage.FaultError
	// FaultShortWrite persists half the buffer and reports ErrInjected.
	FaultShortWrite = storage.FaultShortWrite
	// FaultTornWrite persists half the buffer, reports success, and then
	// fails all subsequent I/O — a power cut mid-write.
	FaultTornWrite = storage.FaultTornWrite
	// FaultENOSPC fails the I/O with an error satisfying
	// errors.Is(err, syscall.ENOSPC) — a full disk.
	FaultENOSPC = storage.FaultENOSPC
	// FaultStall delays the I/O by the armed duration (ArmStall), then
	// lets it succeed — a wedged device, surfaced by the stall watchdog.
	FaultStall = storage.FaultStall
)

// Fault scopes (FaultInjector.ArmScoped / ArmStall).
const (
	// ScopeAny matches every I/O.
	ScopeAny = storage.ScopeAny
	// ScopeWAL matches WAL segment I/O.
	ScopeWAL = storage.ScopeWAL
	// ScopeJournal matches manifest journal and CURRENT I/O.
	ScopeJournal = storage.ScopeJournal
	// ScopeSlab matches NVM slab file I/O.
	ScopeSlab = storage.ScopeSlab
	// ScopeSST matches flash SST I/O.
	ScopeSST = storage.ScopeSST
)

// Health states (Health.State); see the package docs' Robustness section.
const (
	// StateHealthy: full service.
	StateHealthy = core.StateHealthy
	// StateDegraded: read-only after a sticky storage error.
	StateDegraded = core.StateDegraded
	// StateFailed: read-only with scrub-proven unrecoverable NVM loss.
	StateFailed = core.StateFailed
)

// ErrInjected is returned by file operations a FaultInjector failed.
var ErrInjected = storage.ErrInjected

// ErrReadOnly is returned by every mutation issued while the DB is
// degraded; see the package docs' Robustness section. The server maps it
// to a RESP -READONLY reply.
var ErrReadOnly = core.ErrReadOnly

// ErrIOStalled is the error the I/O stall watchdog fails durability
// waiters with when a WAL write exceeds Options.IOStallDeadline.
var ErrIOStalled = storage.ErrIOStalled

// ParseSyncMode parses the -wal-sync flag spellings: "sync", "group", or
// "nosync".
func ParseSyncMode(s string) (SyncMode, error) { return storage.ParseSyncMode(s) }

// ErrClosed is returned by every operation issued after Close (and by
// iterators that outlive it).
var ErrClosed = core.ErrClosed

// Device constructors with the paper's Table-1 parameters.
var (
	// NVMDevice models an Intel Optane SSD P5800X of the given capacity.
	NVMDevice = func(capacity int64) *Device { return simdev.New(simdev.NVMParams(capacity)) }
	// QLCDevice models an Intel 660p QLC drive.
	QLCDevice = func(capacity int64) *Device { return simdev.New(simdev.QLCParams(capacity)) }
	// TLCDevice models an Intel 760p TLC drive.
	TLCDevice = func(capacity int64) *Device { return simdev.New(simdev.TLCParams(capacity)) }
	// NewPageCache models an OS page cache of the given size.
	NewPageCache = simdev.NewPageCache
)

// DB is a PrismDB instance.
type DB struct {
	inner *core.DB
}

// Open creates or recovers a database. Options.NVM and Options.Flash are
// required. Reopening with devices that already hold PrismDB state recovers
// from the slabs and manifests (slab writes are synchronous and versioned,
// so in-memory "recovery" is a scan). With Options.DataDir set, Open locks
// the data directory, replays the manifest journal and the WAL tail, and
// rebuilds the same state from real files — see the package docs'
// Durability section.
func Open(opts Options) (*DB, error) {
	inner, err := core.Open(opts)
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// TierSpec sizes a two-tier deployment.
type TierSpec struct {
	// TotalBytes is the database capacity across both tiers.
	TotalBytes int64
	// NVMFraction is the share of capacity on NVM (the paper evaluates
	// 0.05–0.5; het10 ≈ 0.11 matches TLC flash cost).
	NVMFraction float64
	// DatasetKeys sizes the tracker, key-index domain, and read-trigger
	// epochs. Defaults to TotalBytes / 1 KiB.
	DatasetKeys int
	// Partitions defaults to 8.
	Partitions int
	// DRAMBytes sizes the OS page cache (defaults to TotalBytes / 10,
	// the paper's 1:10 DRAM:storage ratio).
	DRAMBytes int64
}

// RecommendedConfig builds Options matching the paper's evaluation setup:
// NVM:flash split per the spec, tracker = 20% of keys, pinning threshold
// 0.7, approx-MSC with power-of-8 candidate selection, promotions plus
// read-triggered compactions enabled.
func RecommendedConfig(spec TierSpec) Options {
	if spec.TotalBytes <= 0 {
		spec.TotalBytes = 1 << 30
	}
	if spec.NVMFraction <= 0 || spec.NVMFraction >= 1 {
		spec.NVMFraction = 0.11
	}
	if spec.DatasetKeys <= 0 {
		spec.DatasetKeys = int(spec.TotalBytes / 1024)
	}
	if spec.Partitions <= 0 {
		spec.Partitions = 8
	}
	if spec.DRAMBytes <= 0 {
		spec.DRAMBytes = spec.TotalBytes / 10
	}
	nvmBytes := int64(float64(spec.TotalBytes) * spec.NVMFraction)
	flashBytes := spec.TotalBytes - nvmBytes
	nvmDev := nvmBytes * 4 // headroom: slab extents round up per partition and class
	if nvmDev < 8<<20 {
		nvmDev = 8 << 20
	}
	return Options{
		Partitions:       spec.Partitions,
		NVM:              NVMDevice(nvmDev),
		Flash:            QLCDevice(flashBytes * 4),
		Cache:            NewPageCache(spec.DRAMBytes),
		NVMBudget:        nvmBytes,
		TrackerCapacity:  spec.DatasetKeys / 5,
		PinningThreshold: 0.7,
		KeySpace:         uint64(spec.DatasetKeys) * 2,
		Promotions:       true,
		ReadTrigger:      core.DefaultReadTrigger(spec.DatasetKeys),
	}
}

// Put writes key=value, returning the simulated operation latency.
func (db *DB) Put(key, value []byte) (time.Duration, error) {
	return db.inner.Put(key, value)
}

// PutBatch writes a group of pairs, returning their summed simulated
// latency. Under WriteAsync all pairs enqueue onto their partitions' owner
// queues together, so a batch costs one critical section, one WAL group
// append, and one view republication per touched partition; the server's
// MSET and pipelined-SET fast path ride this. Pairs land in batch order
// per partition, and the call returns only after every pair is applied
// (and durable, per Options.WALSync).
func (db *DB) PutBatch(pairs []KV) (time.Duration, error) {
	return db.inner.PutBatch(pairs)
}

// Get returns the newest value for key, the tier that served the read, and
// the simulated latency. Missing keys return (nil, TierMiss, lat, nil).
func (db *DB) Get(key []byte) ([]byte, Tier, time.Duration, error) {
	return db.inner.Get(key)
}

// GetBuf is Get with a caller-provided value buffer: the value is appended
// to buf[:0] and the resulting slice returned (it aliases buf when buf has
// capacity). Reusing buf across calls makes NVM- and page-cache-hit reads
// allocation-free.
func (db *DB) GetBuf(key, buf []byte) ([]byte, Tier, time.Duration, error) {
	return db.inner.GetBuf(key, buf)
}

// Delete removes key.
func (db *DB) Delete(key []byte) (time.Duration, error) {
	return db.inner.Delete(key)
}

// Scan returns up to n live objects with keys ≥ start in global key order.
func (db *DB) Scan(start []byte, n int) ([]KV, time.Duration, error) {
	return db.inner.Scan(start, n)
}

// NewIterator returns a streaming iterator positioned at the first live
// key ≥ start (nil = minimum). limitHint, when > 0, bounds the iterator's
// per-partition snapshot work to about that many entries (pass the number
// of entries you expect to read; 0 for an unbounded, fully
// snapshot-consistent scan). Callers must Close the iterator to release
// its snapshot pins and charge the scan's virtual time to the issuing
// partition's clock.
func (db *DB) NewIterator(start []byte, limitHint int) *Iterator {
	return db.inner.NewIterator(start, limitHint)
}

// Stats returns cumulative engine counters.
func (db *DB) Stats() Stats { return db.inner.Stats() }

// ResetStats zeroes counters (e.g. after a warm-up phase).
func (db *DB) ResetStats() { db.inner.ResetStats() }

// Elapsed returns the virtual wall-clock time consumed so far.
func (db *DB) Elapsed() time.Duration { return db.inner.Elapsed() }

// AdvanceAll aligns all partition clocks to the global maximum, draining
// background compaction workers first (call between experiment phases).
func (db *DB) AdvanceAll() { db.inner.AdvanceAll() }

// DrainCompactions blocks until every partition's background compaction
// worker is idle (no-op under CompactionSync).
func (db *DB) DrainCompactions() { db.inner.DrainCompactions() }

// ClockDistribution returns the tracker's clock-value histogram (Fig 5).
func (db *DB) ClockDistribution() [tracker.MaxClock + 1]int {
	return db.inner.ClockDistribution()
}

// NVMUsage returns current NVM consumption and the configured budget.
func (db *DB) NVMUsage() (used, budget int64) { return db.inner.NVMUsage() }

// Partitions returns the partition count.
func (db *DB) Partitions() int { return db.inner.Partitions() }

// Close marks the database closed. In-memory there is nothing to flush
// (writes are synchronous); a durable DB flushes and fsyncs its WAL,
// checkpoints the slab files, prunes the log, and releases the data
// directory's lock. Afterwards every operation fails with ErrClosed and
// open iterators fail on their next positioning call, which is what lets a
// serving front end shut down deterministically. Stats and the other
// read-only accessors keep working. Idempotent.
func (db *DB) Close() error { return db.inner.Close() }

// PersistenceStats reports the durability layer's counters; Durable is
// false (and everything zero) when Options.DataDir was not set.
func (db *DB) PersistenceStats() PersistenceStats { return db.inner.PersistenceStats() }

// Health reports the DB's failure-domain state — Healthy, Degraded
// (read-only), or Failed — with the first sticky cause and when it struck;
// see the package docs' Robustness section. Callable at any time,
// including after Close.
func (db *DB) Health() Health { return db.inner.Health() }

// Registry returns the DB's metrics registry — Options.Metrics, or the
// private one Open created when it was nil. Every engine instrument
// (fsync latency, write batching, compaction rounds, view retries) records
// here; mount it with NewMetricsMux to expose /metrics.
func (db *DB) Registry() *MetricsRegistry { return db.inner.Registry() }

// Events returns the DB's structured event log (Options.Events, or the
// private one created at Open).
func (db *DB) Events() *EventLog { return db.inner.Events() }

// PutTraced is Put with stage tracing: the write's queue-wait, apply,
// WAL-append, and fsync-wait durations are stored into tr. The server's
// sampled tracing (SLOWLOG, TRACE) rides this; tr must not be shared
// across concurrent calls.
func (db *DB) PutTraced(key, value []byte, tr *OpTrace) (time.Duration, error) {
	return db.inner.PutTraced(key, value, tr)
}

// DeleteTraced is Delete with stage tracing; see PutTraced.
func (db *DB) DeleteTraced(key []byte, tr *OpTrace) (time.Duration, error) {
	return db.inner.DeleteTraced(key, tr)
}

// NewMetricsRegistry builds an empty metrics registry to share across a DB
// and a server (Options.Metrics, server Config.Metrics).
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// NewEventLog builds a structured event log retaining the last capacity
// events (<= 0 uses the default, 256).
func NewEventLog(capacity int) *EventLog { return obs.NewEventLog(capacity) }

// NewMetricsMux returns an http.Handler serving Prometheus text-format
// metrics at /metrics, the JSON event tail at /events, and net/http/pprof
// profiles under /debug/pprof/ — what `prismserver -metrics-addr` mounts.
// events may be nil.
func NewMetricsMux(reg *MetricsRegistry, events *EventLog) *http.ServeMux {
	return obs.NewMux(reg, events)
}

// DefaultReadTrigger returns the paper's read-trigger defaults scaled to a
// dataset size.
func DefaultReadTrigger(datasetKeys int) ReadTriggerOptions {
	return core.DefaultReadTrigger(datasetKeys)
}
