module github.com/prismdb/prismdb

go 1.24.0
