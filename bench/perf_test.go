package bench

import (
	"testing"

	"github.com/prismdb/prismdb/workload"
)

// perfScale is the workload used for the driver benchmarks: large enough
// that steady-state op cost dominates setup, small enough for CI.
func perfScale() Scale {
	return Scale{Keys: 20000, Ops: 30000, WarmupOps: 10000, ValueSize: 1024}
}

// BenchmarkYCSBBSerial drives the read-heavy YCSB-B mix through the serial
// lockstep driver on 8 partitions. ns/op covers one full Run (load +
// warm-up + measure), so before/after comparisons divide the same work.
func BenchmarkYCSBBSerial(b *testing.B) {
	benchmarkYCSBB(b, Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8})
}

// BenchmarkYCSBBParallel is the same workload through the parallel
// partition driver: one worker goroutine per partition.
func BenchmarkYCSBBParallel(b *testing.B) {
	benchmarkYCSBB(b, Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, ParallelDriver: true})
}

func benchmarkYCSBB(b *testing.B, setup Setup) {
	sc := perfScale()
	wl, err := workload.YCSB('B', sc.Keys, sc.ValueSize, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var hostKops float64
	for i := 0; i < b.N; i++ {
		res, err := Run(setup, sc, wl, "ycsb-b")
		if err != nil {
			b.Fatal(err)
		}
		if res.ThroughputKops <= 0 {
			b.Fatal("no throughput")
		}
		hostKops += res.HostKops
	}
	// Host ops/sec of the measured phase alone (excludes load/warm-up).
	b.ReportMetric(hostKops/float64(b.N)*1000, "wall-ops/s")
}

// TestParallelDriverMatchesSerial checks the parallel driver produces the
// same logical work as the serial lockstep driver: identical op counts and
// per-kind histogram totals, and a virtual elapsed time in the same
// neighborhood (cross-partition queueing interleaves differently, so exact
// equality is not expected).
func TestParallelDriverMatchesSerial(t *testing.T) {
	sc := Scale{Keys: 4000, Ops: 6000, WarmupOps: 2000, ValueSize: 512}
	wl, err := workload.YCSB('B', sc.Keys, sc.ValueSize, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8}, sc, wl, "serial")
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, ParallelDriver: true}, sc, wl, "parallel")
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.ReadHist.Count(), par.ReadHist.Count(); s != p {
		t.Fatalf("read ops: serial %d, parallel %d", s, p)
	}
	if s, p := serial.UpdateHist.Count(), par.UpdateHist.Count(); s != p {
		t.Fatalf("update ops: serial %d, parallel %d", s, p)
	}
	if s, p := serial.Prism.Gets, par.Prism.Gets; s != p {
		t.Fatalf("engine Gets: serial %d, parallel %d", s, p)
	}
	if s, p := serial.Prism.Puts, par.Prism.Puts; s != p {
		t.Fatalf("engine Puts: serial %d, parallel %d", s, p)
	}
	ratio := par.Elapsed.Seconds() / serial.Elapsed.Seconds()
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("virtual elapsed diverged: serial %v, parallel %v (ratio %.2f)",
			serial.Elapsed, par.Elapsed, ratio)
	}
}
