package bench

import (
	"testing"

	"github.com/prismdb/prismdb/workload"
)

// perfScale is the workload used for the driver benchmarks: large enough
// that steady-state op cost dominates setup, small enough for CI.
func perfScale() Scale {
	return Scale{Keys: 20000, Ops: 30000, WarmupOps: 10000, ValueSize: 1024}
}

// BenchmarkYCSBBSerial drives the read-heavy YCSB-B mix through the serial
// lockstep driver on 8 partitions. ns/op covers one full Run (load +
// warm-up + measure), so before/after comparisons divide the same work.
func BenchmarkYCSBBSerial(b *testing.B) {
	benchmarkYCSBB(b, Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8})
}

// BenchmarkYCSBBParallel is the same workload through the parallel
// partition driver: one worker goroutine per partition.
func BenchmarkYCSBBParallel(b *testing.B) {
	benchmarkYCSBB(b, Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, ParallelDriver: true})
}

func benchmarkYCSBB(b *testing.B, setup Setup) {
	sc := perfScale()
	wl, err := workload.YCSB('B', sc.Keys, sc.ValueSize, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var hostKops float64
	for i := 0; i < b.N; i++ {
		res, err := Run(setup, sc, wl, "ycsb-b")
		if err != nil {
			b.Fatal(err)
		}
		if res.ThroughputKops <= 0 {
			b.Fatal("no throughput")
		}
		hostKops += res.HostKops
	}
	// Host ops/sec of the measured phase alone (excludes load/warm-up).
	b.ReportMetric(hostKops/float64(b.N)*1000, "wall-ops/s")
}

// BenchmarkYCSBESerial drives the scan-heavy YCSB-E mix (95% scans) through
// the serial lockstep driver, so scan throughput joins the tracked perf
// trajectory in BENCH_<date>.json.
func BenchmarkYCSBESerial(b *testing.B) {
	benchmarkYCSBE(b, Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8})
}

// BenchmarkYCSBEParallel is YCSB-E through the parallel partition driver:
// scans stream through snapshot-pinned iterators that charge only the
// issuing worker's clock, so one worker per partition stays sound.
func BenchmarkYCSBEParallel(b *testing.B) {
	benchmarkYCSBE(b, Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, ParallelDriver: true})
}

func benchmarkYCSBE(b *testing.B, setup Setup) {
	sc := Scale{Keys: 20000, Ops: 8000, WarmupOps: 2000, ValueSize: 1024}
	wl, err := workload.YCSB('E', sc.Keys, sc.ValueSize, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var hostKops float64
	for i := 0; i < b.N; i++ {
		res, err := Run(setup, sc, wl, "ycsb-e")
		if err != nil {
			b.Fatal(err)
		}
		if res.ThroughputKops <= 0 {
			b.Fatal("no throughput")
		}
		hostKops += res.HostKops
	}
	b.ReportMetric(hostKops/float64(b.N)*1000, "wall-ops/s")
}

// TestParallelScanAccountingMatchesSerial is the regression test for the
// parallel-driver scan bug this PR fixes structurally: scans used to
// advance foreign partitions' clocks from the issuing worker's goroutine,
// so scan-heavy parallel runs reported untrustworthy virtual time. With
// iterator-owned clocks, serial and parallel YCSB-E must agree on the
// logical work exactly and on simulated throughput within ~10%.
func TestParallelScanAccountingMatchesSerial(t *testing.T) {
	sc := Scale{Keys: 4000, Ops: 3000, WarmupOps: 1000, ValueSize: 512}
	wl, err := workload.YCSB('E', sc.Keys, sc.ValueSize, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Both rigs pin sync compaction: this test isolates DRIVER equivalence
	// (lockstep vs parallel), and the drivers otherwise default to
	// different compaction modes (serial→sync, parallel→async).
	serial, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, Compaction: "sync"}, sc, wl, "serial")
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, ParallelDriver: true, Compaction: "sync"}, sc, wl, "parallel")
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.ScanHist.Count(), par.ScanHist.Count(); s != p {
		t.Fatalf("scan ops: serial %d, parallel %d", s, p)
	}
	if s, p := serial.Prism.Scans, par.Prism.Scans; s != p {
		t.Fatalf("engine Scans: serial %d, parallel %d", s, p)
	}
	if s, p := serial.Prism.Puts, par.Prism.Puts; s != p {
		t.Fatalf("engine Puts: serial %d, parallel %d", s, p)
	}
	ratio := par.ThroughputKops / serial.ThroughputKops
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("scan-heavy throughput diverged beyond ~10%%: serial %.1f kops, parallel %.1f kops (ratio %.3f)",
			serial.ThroughputKops, par.ThroughputKops, ratio)
	}
}

// TestParallelDriverMatchesSerial checks the parallel driver produces the
// same logical work as the serial lockstep driver: identical op counts and
// per-kind histogram totals, and a virtual elapsed time in the same
// neighborhood (cross-partition queueing interleaves differently, so exact
// equality is not expected).
func TestParallelDriverMatchesSerial(t *testing.T) {
	sc := Scale{Keys: 4000, Ops: 6000, WarmupOps: 2000, ValueSize: 512}
	wl, err := workload.YCSB('B', sc.Keys, sc.ValueSize, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sync compaction on both sides; see TestParallelScanAccountingMatchesSerial.
	serial, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, Compaction: "sync"}, sc, wl, "serial")
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 8, ParallelDriver: true, Compaction: "sync"}, sc, wl, "parallel")
	if err != nil {
		t.Fatal(err)
	}
	if s, p := serial.ReadHist.Count(), par.ReadHist.Count(); s != p {
		t.Fatalf("read ops: serial %d, parallel %d", s, p)
	}
	if s, p := serial.UpdateHist.Count(), par.UpdateHist.Count(); s != p {
		t.Fatalf("update ops: serial %d, parallel %d", s, p)
	}
	if s, p := serial.Prism.Gets, par.Prism.Gets; s != p {
		t.Fatalf("engine Gets: serial %d, parallel %d", s, p)
	}
	if s, p := serial.Prism.Puts, par.Prism.Puts; s != p {
		t.Fatalf("engine Puts: serial %d, parallel %d", s, p)
	}
	ratio := par.Elapsed.Seconds() / serial.Elapsed.Seconds()
	if ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("virtual elapsed diverged: serial %v, parallel %v (ratio %.2f)",
			serial.Elapsed, par.Elapsed, ratio)
	}
}
