package bench

import (
	"math"
	"sync"
	"time"

	"github.com/prismdb/prismdb/internal/metrics"
	"github.com/prismdb/prismdb/workload"
)

// paceWindow bounds how far ahead of the slowest active partition a
// parallel worker may run in virtual time. Shared device channels are
// reserved at the issuer's virtual now, so an unbounded leader would
// reserve lanes deep in the virtual future and laggards would queue behind
// them — inflating simulated time the lockstep driver would never show.
// A couple of milliseconds spans thousands of µs-scale ops, keeping the
// synchronization cost negligible while holding the skew to ~window/run.
const paceWindow = 2 * time.Millisecond

// clockPacer is a conservative discrete-event time window over the
// partition workers' virtual clocks.
type clockPacer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	clocks []int64
	window int64
}

func newClockPacer(n int, window time.Duration) *clockPacer {
	p := &clockPacer{clocks: make([]int64, n), window: int64(window)}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// advance publishes worker i's clock, then blocks while the worker is more
// than one window ahead of the slowest active worker.
func (p *clockPacer) advance(i int, t int64) {
	p.mu.Lock()
	p.clocks[i] = t
	p.cond.Broadcast()
	for t > p.min()+p.window {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// done retires worker i so laggards never wait on a finished worker.
func (p *clockPacer) done(i int) {
	p.mu.Lock()
	p.clocks[i] = math.MaxInt64
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *clockPacer) min() int64 {
	m := int64(math.MaxInt64)
	for _, c := range p.clocks {
		if c < m {
			m = c
		}
	}
	return m
}

// driveOpsParallel executes n generated operations with one worker
// goroutine per PrismDB partition, exploiting the engine's shared-nothing
// design: ops are routed to per-partition streams up front (generation
// stays serial and deterministic), then every worker drains its own stream
// with no per-op cross-worker coordination beyond the time-window pacer.
// Each worker records latencies into private histograms that are merged
// once at the end, so the measurement path adds no locks to the op loop.
//
// Per-partition virtual-time causality is exact — a partition's ops run in
// issue order on its own clock, and a scan (however many partitions' data
// it reads through its iterator) charges only the issuing worker's clock.
// Cross-partition interactions (shared device channels, the shared CPU
// pool) interleave within the pacer window, so simulated latencies can
// vary slightly run to run; wall-clock throughput is the point of this
// driver.
func (r *rig) driveOpsParallel(gen *workload.Generator, n int, rh, uh, sh *metrics.Histogram) error {
	parts := r.prism.Partitions()
	queues, err := workload.Shard(gen, n, parts, r.prism.PartitionOf)
	if err != nil {
		return err
	}

	pacer := newClockPacer(parts, paceWindow)
	for pi := 0; pi < parts; pi++ {
		if len(queues[pi]) == 0 {
			pacer.done(pi)
			continue
		}
		pacer.clocks[pi] = int64(r.prism.PartitionClock(pi))
	}

	type workerResult struct {
		rh, uh, sh *metrics.Histogram
		err        error
	}
	results := make([]workerResult, parts)
	var wg sync.WaitGroup
	for pi := 0; pi < parts; pi++ {
		if len(queues[pi]) == 0 {
			continue
		}
		wg.Add(1)
		go func(pi int, ops []workload.Op) {
			defer wg.Done()
			defer pacer.done(pi)
			res := &results[pi]
			if rh != nil {
				res.rh = metrics.NewHistogram()
			}
			if uh != nil {
				res.uh = metrics.NewHistogram()
			}
			if sh != nil {
				res.sh = metrics.NewHistogram()
			}
			// Per-worker engine: private value buffer, shared DB.
			eng := &prismEngine{db: r.prism}
			for _, op := range ops {
				if err := applyOp(eng, op, res.rh, res.uh, res.sh); err != nil {
					res.err = err
					return
				}
				pacer.advance(pi, int64(r.prism.PartitionClock(pi)))
			}
		}(pi, queues[pi])
	}
	wg.Wait()

	for i := range results {
		res := &results[i]
		if res.err != nil {
			return res.err
		}
		if rh != nil && res.rh != nil {
			rh.Merge(res.rh)
		}
		if uh != nil && res.uh != nil {
			uh.Merge(res.uh)
		}
		if sh != nil && res.sh != nil {
			sh.Merge(res.sh)
		}
	}
	return nil
}
