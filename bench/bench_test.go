package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/prismdb/prismdb/workload"
)

// tinyScale keeps harness tests fast.
func tinyScale() Scale {
	return Scale{Keys: 3000, Ops: 4000, WarmupOps: 2000, ValueSize: 512}
}

func TestRunPrism(t *testing.T) {
	wl, _ := workload.YCSB('A', 3000, 512, 0.99, 1)
	res, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6}, tinyScale(), wl, "t")
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputKops <= 0 {
		t.Fatal("no throughput")
	}
	if res.ReadHist.Count() == 0 || res.UpdateHist.Count() == 0 {
		t.Fatal("histograms empty")
	}
	if res.Prism == nil || res.LSM != nil {
		t.Fatal("engine stats mis-wired")
	}
	if res.Prism.Compactions == 0 {
		t.Fatal("prism never compacted at this scale")
	}
	if res.CostPerGB <= 0.1 || res.CostPerGB >= 2.5 {
		t.Fatalf("het cost %f out of band", res.CostPerGB)
	}
}

func TestRunEverySystem(t *testing.T) {
	wl, _ := workload.YCSB('A', 3000, 512, 0.99, 1)
	for _, sys := range []System{SysPrism, SysRocks, SysRocksL2C, SysRocksRA, SysMutant, SysSpanDB} {
		setup := Setup{System: sys, NVMFraction: 1.0 / 6}
		res, err := Run(setup, tinyScale(), wl, sys.String())
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if res.ThroughputKops <= 0 {
			t.Fatalf("%v: zero throughput", sys)
		}
	}
}

func TestRunSingleTier(t *testing.T) {
	wl, _ := workload.YCSB('B', 3000, 512, 0.99, 1)
	for _, tier := range []TierKind{TierNVM, TierTLC, TierQLC} {
		res, err := Run(Setup{System: SysRocks, SingleTier: tier}, tinyScale(), wl, string(tier))
		if err != nil {
			t.Fatalf("%s: %v", tier, err)
		}
		if res.ThroughputKops <= 0 {
			t.Fatalf("%s: zero throughput", tier)
		}
	}
}

func TestSingleTierOrdering(t *testing.T) {
	// Table 2's first-order shape: NVM must beat QLC on the same engine.
	wl, _ := workload.YCSB('A', 3000, 512, 0.8, 1)
	nvm, err := Run(Setup{System: SysRocks, SingleTier: TierNVM}, tinyScale(), wl, "nvm")
	if err != nil {
		t.Fatal(err)
	}
	qlc, err := Run(Setup{System: SysRocks, SingleTier: TierQLC}, tinyScale(), wl, "qlc")
	if err != nil {
		t.Fatal(err)
	}
	if nvm.ThroughputKops <= qlc.ThroughputKops {
		t.Fatalf("NVM %f not faster than QLC %f", nvm.ThroughputKops, qlc.ThroughputKops)
	}
}

func TestScansWorkThroughHarness(t *testing.T) {
	wl, _ := workload.YCSB('E', 2000, 256, 0.99, 1)
	sc := Scale{Keys: 2000, Ops: 1500, WarmupOps: 500, ValueSize: 256}
	for _, sys := range []System{SysPrism, SysRocks} {
		res, err := Run(Setup{System: sys, NVMFraction: 1.0 / 6}, sc, wl, "scan")
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if res.ScanHist.Count() == 0 {
			t.Fatalf("%v: no scans recorded", sys)
		}
	}
}

func TestCostModel(t *testing.T) {
	if c := costPerGB(Setup{SingleTier: TierNVM}); c != 2.5 {
		t.Fatalf("nvm cost %f", c)
	}
	if c := costPerGB(Setup{SingleTier: TierQLC}); c != 0.1 {
		t.Fatalf("qlc cost %f", c)
	}
	if c := costPerGB(Setup{SingleTier: TierTLC}); c != 0.31 {
		t.Fatalf("tlc cost %f", c)
	}
	// het10: 0.11·2.5 + 0.89·0.1 ≈ 0.364 (≈ the paper's $0.34–0.36/GB).
	c := costPerGB(Setup{NVMFraction: 0.11})
	if c < 0.35 || c > 0.38 {
		t.Fatalf("het10 cost %f", c)
	}
}

func TestScaleMul(t *testing.T) {
	s := DefaultScale().Mul(2)
	d := DefaultScale()
	if s.Keys != d.Keys*2 || s.Ops != d.Ops*2 {
		t.Fatalf("Mul: %+v", s)
	}
	if s.ValueSize != d.ValueSize {
		t.Fatal("Mul must not scale object size")
	}
}

func TestSystemStrings(t *testing.T) {
	want := map[System]string{
		SysPrism: "prismdb", SysRocks: "rocksdb", SysRocksL2C: "rocksdb-l2c",
		SysRocksRA: "rocksdb-RA", SysMutant: "mutant", SysSpanDB: "spandb",
	}
	for sys, name := range want {
		if sys.String() != name {
			t.Fatalf("%d -> %q", sys, sys.String())
		}
	}
	if System(99).String() != "unknown" {
		t.Fatal("unknown system string")
	}
}

func TestTable1Prints(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NVM", "QLC", "$2.50", "$0.10"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestFig12LifetimeModel(t *testing.T) {
	sc := Scale{Keys: 3000, Ops: 3000, WarmupOps: 1000, ValueSize: 512}
	var buf bytes.Buffer
	years, err := Fig12(&buf, sc)
	if err != nil {
		t.Fatal(err)
	}
	// Read-dominated UDB must outlive write-heavy UP2X (Fig 12's story).
	if years["UDB"] <= years["UP2X"] {
		t.Fatalf("UDB %f years not > UP2X %f years", years["UDB"], years["UP2X"])
	}
	for name, y := range years {
		if y <= 0 || y > 10 {
			t.Fatalf("%s lifetime %f out of band", name, y)
		}
	}
}
