package bench

import (
	"fmt"
	"testing"

	"github.com/prismdb/prismdb/workload"
)

// TestDeleteHeavyChurn drives the ~25%-DEL YCSB-style mix through the
// bench Engine — a workload shape the suite never exercised before — and
// pins three invariants over the measured phase, in both compaction modes:
//
//   - stats accounting: Puts+Gets+Deletes+Scans equals exactly the ops
//     issued (RMW aside, which this mix has none of);
//   - tombstone progress: delete churn over a two-tier dataset must
//     annihilate tombstones (DroppedTombstones advances), not pin them;
//   - space safety: NVM usage ends under the high watermark once
//     compactions settle.
func TestDeleteHeavyChurn(t *testing.T) {
	for _, mode := range []string{"sync", "async"} {
		t.Run(mode, func(t *testing.T) {
			sc := Scale{Keys: 4000, Ops: 12000, WarmupOps: 2000, ValueSize: 512}
			wl := workload.DeleteHeavy(sc.Keys, sc.ValueSize, 0.99, 1)
			setup := Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 4, Compaction: mode}
			r, err := build(setup, sc, wl)
			if err != nil {
				t.Fatal(err)
			}
			gen := workload.NewGenerator(wl)
			for i := 0; i < sc.Keys; i++ {
				if _, err := r.eng.Put(gen.LoadKey(i), gen.LoadValue(i)); err != nil {
					t.Fatalf("load: %v", err)
				}
			}
			if err := r.driveOps(gen, sc.WarmupOps, nil, nil, nil); err != nil {
				t.Fatalf("warmup: %v", err)
			}
			r.eng.AdvanceAll()
			r.eng.ResetStats()
			if err := r.driveOps(gen, sc.Ops, nil, nil, nil); err != nil {
				t.Fatalf("measure: %v", err)
			}
			r.eng.AdvanceAll() // drains async workers before reading stats

			st := r.prism.Stats()
			if got := st.Puts + st.Gets + st.Deletes + st.Scans; got != int64(sc.Ops) {
				t.Fatalf("stats invariant broken: Puts %d + Gets %d + Deletes %d + Scans %d = %d, issued %d",
					st.Puts, st.Gets, st.Deletes, st.Scans, got, sc.Ops)
			}
			if st.Deletes < int64(sc.Ops)/5 {
				t.Fatalf("mix not delete-heavy: %d deletes of %d ops", st.Deletes, sc.Ops)
			}
			if st.DroppedTombstones == 0 {
				t.Fatalf("no tombstones annihilated under delete-heavy churn: %+v", st)
			}
			used, budget := r.prism.NVMUsage()
			high := int64(float64(budget) * r.prism.Options().HighWatermark)
			if used > high {
				t.Fatalf("NVM usage %d above high watermark %d (budget %d) after settling", used, high, budget)
			}
			r.prism.Close()
		})
	}
}

// TestAsyncSerialBenchFidelity runs YCSB-A, -B, and -E through the serial
// lockstep driver in sync and async compaction modes and requires the
// simulated time of the measured phase to agree within a modest band: the
// background worker must preserve the virtual-time model (BG clock,
// compEndAt serialization, space-credit maturation), diverging only
// through job start times and selection state. Both sides are measured to
// a settled state (AdvanceAll: workers drained, compaction horizons
// folded in), so in-flight work at the phase edge — which sync pays
// inline but async would otherwise defer past the measurement — cannot
// skew the comparison.
func TestAsyncSerialBenchFidelity(t *testing.T) {
	sc := Scale{Keys: 6000, Ops: 9000, WarmupOps: 3000, ValueSize: 512}
	for _, w := range []byte{'A', 'B', 'E'} {
		w := w
		t.Run(fmt.Sprintf("ycsb-%c", w), func(t *testing.T) {
			run := func(mode string) float64 {
				wl, err := workload.YCSB(w, sc.Keys, sc.ValueSize, 0.99, 1)
				if err != nil {
					t.Fatal(err)
				}
				r, err := build(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: 4, Compaction: mode}, sc, wl)
				if err != nil {
					t.Fatal(err)
				}
				defer r.prism.Close()
				gen := workload.NewGenerator(wl)
				for i := 0; i < sc.Keys; i++ {
					if _, err := r.eng.Put(gen.LoadKey(i), gen.LoadValue(i)); err != nil {
						t.Fatalf("load: %v", err)
					}
				}
				if err := r.driveOps(gen, sc.WarmupOps, nil, nil, nil); err != nil {
					t.Fatalf("warmup: %v", err)
				}
				r.eng.AdvanceAll()
				start := r.eng.Elapsed()
				if err := r.driveOps(gen, sc.Ops, nil, nil, nil); err != nil {
					t.Fatalf("measure: %v", err)
				}
				r.eng.AdvanceAll()
				return (r.eng.Elapsed() - start).Seconds()
			}
			syncSec := run("sync")
			asyncSec := run("async")
			ratio := asyncSec / syncSec
			// Async may come out FASTER in virtual time on write-heavy
			// mixes: compaction volume is near-identical (same watermarks,
			// same ranges), but inline merges force the next credit-dry
			// writer to absorb the whole merge duration as a stall, while
			// background merges overlap it with foreground progress — the
			// effect background compaction exists to buy, bounded by the
			// unchanged §4.2 admission model. Scan-heavy E can run SLOWER
			// async (promotion decisions batch at merge boundaries instead
			// of incrementally, shifting what lands on NVM under the read
			// trigger) and its ratio swings with background job start
			// times. At this CI scale the tiny NVM budget sits near a
			// demotion threshold, so small model changes move the stall
			// count a lot: charging the per-block index CRC against NVM
			// (4 bytes/handle, added with the scrubber) widened A to
			// ~25-28% async-faster and E swings ~±30% run to run. Beyond
			// ±~35% would mean the virtual-time model broke.
			t.Logf("sync %.4fs async %.4fs ratio %.3f", syncSec, asyncSec, ratio)
			if ratio < 0.65 || ratio > 1.35 {
				t.Fatalf("async serial virtual time diverged from sync: sync %.4fs, async %.4fs (ratio %.3f)",
					syncSec, asyncSec, ratio)
			}
		})
	}
}
