// Package bench is the experiment harness that regenerates every table and
// figure of the PrismDB paper's evaluation (§7). Each experiment builds the
// paper's configuration (devices, DRAM ratio, tracker size, pinning
// threshold), loads a dataset, warms up, measures, and prints rows in the
// shape the paper reports. Dataset sizes are scaled down by default
// (Scale); the ratios — NVM:flash 1:5, DRAM:storage 1:10, tracker 20% of
// keys — match the paper at every scale.
package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/lsm"
	"github.com/prismdb/prismdb/internal/metrics"
	"github.com/prismdb/prismdb/internal/msc"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/workload"
)

// Scale sizes an experiment. DefaultScale runs in seconds; multiply toward
// the paper's 100 M-key runs with the -scale flag of cmd/prismbench.
type Scale struct {
	Keys      int // dataset keys
	Ops       int // measured operations
	WarmupOps int
	ValueSize int // bytes (paper default 1 KB)
}

// DefaultScale is CI-friendly: ~20 MB dataset.
func DefaultScale() Scale {
	return Scale{Keys: 20000, Ops: 30000, WarmupOps: 15000, ValueSize: 1024}
}

// Mul scales all sizes by f.
func (s Scale) Mul(f float64) Scale {
	s.Keys = int(float64(s.Keys) * f)
	s.Ops = int(float64(s.Ops) * f)
	s.WarmupOps = int(float64(s.WarmupOps) * f)
	return s
}

// System identifies an engine + placement configuration.
type System int

const (
	// SysPrism is PrismDB on two tiers.
	SysPrism System = iota
	// SysRocks is the LSM engine, single-tier or het per Setup.
	SysRocks
	// SysRocksL2C is the LSM with NVM as an L2 cache.
	SysRocksL2C
	// SysRocksRA is the read-aware pinned-compaction LSM (§3).
	SysRocksRA
	// SysMutant is file-granularity placement.
	SysMutant
	// SysSpanDB is the het LSM with SPDK-style WAL.
	SysSpanDB
)

// String names the system as in the paper's legends.
func (s System) String() string {
	switch s {
	case SysPrism:
		return "prismdb"
	case SysRocks:
		return "rocksdb"
	case SysRocksL2C:
		return "rocksdb-l2c"
	case SysRocksRA:
		return "rocksdb-RA"
	case SysMutant:
		return "mutant"
	case SysSpanDB:
		return "spandb"
	}
	return "unknown"
}

// TierKind picks the device type for single-tier setups.
type TierKind string

// Single-tier device kinds.
const (
	TierNVM TierKind = "nvm"
	TierTLC TierKind = "tlc"
	TierQLC TierKind = "qlc"
)

// Setup is one point in the evaluation's configuration space.
type Setup struct {
	System System
	// SingleTier, when non-empty, runs everything on one device kind.
	SingleTier TierKind
	// NVMFraction is the share of database capacity on NVM for
	// multi-tier setups (paper default 1:5 ⇒ ≈0.167; het10 = 0.11).
	NVMFraction float64
	// FsyncWAL enables synchronous logging (Fig 13). PrismDB always
	// persists synchronously by design.
	FsyncWAL bool
	// Policy selects PrismDB's compaction scoring (Fig 6).
	Policy msc.Policy
	// PinningThreshold overrides PrismDB's default 0.7 (Fig 14c).
	PinningThreshold float64
	// Partitions overrides PrismDB's default 8 (Fig 14d).
	Partitions int
	// DisablePromotions turns off promotions (Fig 14b).
	DisablePromotions bool
	// Prefetch enables the LSM scan prefetcher (on by default for
	// RocksDB, §7.2).
	PrefetchOff bool
	// PowerK overrides the power-of-k candidate count (§5.3 ablation).
	PowerK int
	// RangeFiles overrides i, the SSTs per candidate range (§5.2 ablation).
	RangeFiles int
	// TrackerFraction overrides the tracker's share of the key space
	// (paper default 0.2).
	TrackerFraction float64
	// Compaction selects PrismDB's compaction execution mode: "sync",
	// "async", or "" for the driver-matched default — sync under the
	// serial lockstep driver (bit-reproducible virtual-time results) and
	// async under the parallel driver (the engine default; wall-clock
	// oriented).
	Compaction string
	// ParallelDriver drives PrismDB's shared-nothing partitions with one
	// worker goroutine each instead of the serial lockstep scheduler.
	// Per-partition op order (and thus each partition's virtual-time
	// causality) is preserved; cross-partition device queueing becomes
	// scheduling-dependent, so virtual-time results may vary slightly
	// between runs. Use it for wall-clock throughput; use the serial
	// driver for bit-reproducible virtual-time experiments.
	ParallelDriver bool
}

// Result is one experiment row.
type Result struct {
	Label          string
	Ops            int
	Elapsed        time.Duration
	ThroughputKops float64
	MeanLatency    time.Duration

	// HostElapsed is the real (host) wall-clock time of the measured
	// phase, and HostKops the host ops/sec — the harness's own speed, as
	// opposed to the simulated throughput above.
	HostElapsed time.Duration
	HostKops    float64

	ReadHist   *metrics.Histogram
	UpdateHist *metrics.Histogram
	ScanHist   *metrics.Histogram

	CostPerGB float64

	// Engine-specific snapshots (nil when not applicable).
	Prism *core.Stats
	LSM   *lsm.Stats

	// Device activity during the measured phase.
	FlashWritten int64
	FlashRead    int64
	NVMWritten   int64
	// Queueing diagnostics.
	FlashBusy  time.Duration
	FlashQueue time.Duration
	NVMBusy    time.Duration
	NVMQueue   time.Duration

	// Wear across the whole run (load + warm-up + measure), for Fig 12.
	FlashWearBytes int64
}

// P is shorthand for a latency quantile of the read histogram.
func (r *Result) P(q float64) time.Duration { return r.ReadHist.Quantile(q) }

// costPerGB computes $/GB of usable capacity for a setup, as in Table 2 /
// Fig 9: the weighted device prices over the database's capacity split.
func costPerGB(setup Setup) float64 {
	if setup.SingleTier != "" {
		switch setup.SingleTier {
		case TierNVM:
			return 2.5
		case TierTLC:
			return 0.31
		default:
			return 0.1
		}
	}
	f := setup.NVMFraction
	return f*2.5 + (1-f)*0.1
}

// kvEngine lets the runner drive PrismDB and every LSM variant uniformly.
type kvEngine interface {
	Put(k, v []byte) (time.Duration, error)
	Get(k []byte) (found bool, lat time.Duration, err error)
	Scan(start []byte, n int) (time.Duration, error)
	Delete(k []byte) (time.Duration, error)
	Elapsed() time.Duration
	ResetStats()
	AdvanceAll()
}

// prismEngine adapts core.DB to the harness interface. Each engine owns a
// reused value buffer so the measured Get loop rides the DB's
// allocation-free read path; workers of the parallel driver therefore each
// get their own prismEngine (see driveOpsParallel).
type prismEngine struct {
	db  *core.DB
	buf []byte
}

func (e *prismEngine) Put(k, v []byte) (time.Duration, error) { return e.db.Put(k, v) }
func (e *prismEngine) Get(k []byte) (bool, time.Duration, error) {
	v, tier, lat, err := e.db.GetBuf(k, e.buf)
	if cap(v) > cap(e.buf) {
		e.buf = v[:0]
	}
	return tier != core.TierMiss, lat, err
}

// Scan drains the engine's streaming iterator (limit-hinted to n) without
// materializing results: the measured scan path is the iterator itself, as
// the paper's range queries are (§6).
func (e *prismEngine) Scan(start []byte, n int) (time.Duration, error) {
	it := e.db.NewIterator(start, n)
	for got := 1; got < n && it.Valid(); got++ {
		it.Next()
	}
	err := it.Close()
	return it.Latency(), err
}
func (e *prismEngine) Delete(k []byte) (time.Duration, error) { return e.db.Delete(k) }
func (e *prismEngine) Elapsed() time.Duration                 { return e.db.Elapsed() }
func (e *prismEngine) ResetStats()                            { e.db.ResetStats() }
func (e *prismEngine) AdvanceAll()                            { e.db.AdvanceAll() }

type lsmEngine struct{ db *lsm.DB }

func (e lsmEngine) Put(k, v []byte) (time.Duration, error) { return e.db.Put(k, v) }
func (e lsmEngine) Get(k []byte) (bool, time.Duration, error) {
	_, ok, lat, err := e.db.Get(k)
	return ok, lat, err
}
func (e lsmEngine) Scan(start []byte, n int) (time.Duration, error) {
	_, lat, err := e.db.Scan(start, n)
	return lat, err
}
func (e lsmEngine) Delete(k []byte) (time.Duration, error) { return e.db.Delete(k) }
func (e lsmEngine) Elapsed() time.Duration                 { return e.db.Elapsed() }
func (e lsmEngine) ResetStats()                            { e.db.ResetStats() }
func (e lsmEngine) AdvanceAll()                            { e.db.AdvanceAll() }

// UseParallelDriver, when true, drives PrismDB in every experiment with
// the parallel partition driver (one worker goroutine per partition)
// unless the Setup already chose one. cmd/prismbench sets it from its
// -parallel flag.
var UseParallelDriver bool

// ForceCompaction, when "sync" or "async", overrides every Setup's
// compaction mode. cmd/prismbench sets it from its -compaction flag.
var ForceCompaction string

// compactionMode resolves a Setup's compaction mode; see Setup.Compaction.
// Anything other than "sync", "async", or "" is an error — a typo silently
// falling back to the driver default could make a mode-comparison
// experiment compare a mode against itself.
func compactionMode(setup Setup) (core.CompactionMode, error) {
	mode := setup.Compaction
	if ForceCompaction != "" {
		mode = ForceCompaction
	}
	switch mode {
	case "sync":
		return core.CompactionSync, nil
	case "async":
		return core.CompactionAsync, nil
	case "":
		if setup.ParallelDriver {
			return core.CompactionAsync, nil
		}
		return core.CompactionSync, nil
	default:
		return 0, fmt.Errorf("bench: Setup.Compaction must be %q, %q, or empty, got %q", "sync", "async", mode)
	}
}

// rig is a fully built experiment instance.
type rig struct {
	setup Setup
	eng   kvEngine
	prism *core.DB
	lsm   *lsm.DB
	nvm   *simdev.Device
	flash *simdev.Device
}

// build constructs devices and an engine for a setup at a scale.
func build(setup Setup, sc Scale, wl workload.Config) (*rig, error) {
	if UseParallelDriver {
		setup.ParallelDriver = true
	}
	datasetBytes := int64(sc.Keys) * int64(sc.ValueSize+64)
	dram := datasetBytes / 10
	if dram < 1<<20 {
		dram = 1 << 20
	}

	r := &rig{setup: setup}
	// All engine CPU (foreground and compaction) contends for the
	// paper's 10-core cgroup.
	cpuPool := simdev.NewCPUPool(10)
	var single *simdev.Device
	if setup.SingleTier != "" {
		cap := datasetBytes * 4
		switch setup.SingleTier {
		case TierNVM:
			single = simdev.New(simdev.NVMParams(cap))
		case TierTLC:
			single = simdev.New(simdev.TLCParams(cap))
		default:
			single = simdev.New(simdev.QLCParams(cap))
		}
		r.nvm, r.flash = single, single
	} else {
		f := setup.NVMFraction
		if f <= 0 {
			f = 1.0 / 6 // the paper's default 1:5 NVM:QLC
		}
		nvmBytes := int64(float64(datasetBytes) * f)
		nvmCap := nvmBytes * 3 // device headroom over the engine budget
		if nvmCap < 8<<20 {
			nvmCap = 8 << 20 // slab extents round up per partition and class
		}
		r.nvm = simdev.New(simdev.NVMParams(nvmCap))
		r.flash = simdev.New(simdev.QLCParams(datasetBytes * 4))
	}

	switch setup.System {
	case SysPrism:
		parts := setup.Partitions
		if parts <= 0 {
			parts = 8
		}
		pol := setup.Policy
		pin := setup.PinningThreshold
		if pin == 0 {
			pin = 0.7
		}
		nvmBudget := int64(float64(datasetBytes) * setup.NVMFraction)
		if setup.SingleTier != "" {
			nvmBudget = datasetBytes // degenerate: all on the single device
		}
		cmode, err := compactionMode(setup)
		if err != nil {
			return nil, err
		}
		opts := core.Options{
			CompactionMode: cmode,
			// The lockstep drivers are serial: the owner-queue write path
			// would never batch (one op in flight) and its drain cadence
			// would shift read-trigger timing between runs under study.
			// Virtual-time measurements pin the deterministic locked path;
			// the wall-clock contended benches (contended_test.go) choose
			// their WriteMode explicitly.
			WriteMode:        core.WriteSync,
			Partitions:       parts,
			NVM:              r.nvm,
			Flash:            r.flash,
			Cache:            simdev.NewPageCache(dram),
			NVMBudget:        nvmBudget,
			TrackerCapacity:  trackerCap(setup, sc),
			PinningThreshold: pin,
			Policy:           pol,
			Promotions:       !setup.DisablePromotions,
			KeySpace:         uint64(sc.Keys) * 4,
			BucketKeys:       maxInt(sc.Keys/64, 64),
			TargetSSTBytes:   int64(sc.Keys) * int64(sc.ValueSize) / 64,
			// The paper's 98%/95% watermarks assume NVM headroom in the
			// GBs; at scaled-down budgets the gap must stay a useful
			// number of objects wide.
			HighWatermark: 0.95,
			LowWatermark:  0.75,
			PowerK:        setup.PowerK,
			RangeFiles:    setup.RangeFiles,
			Seed:          42,
			CPUPool:       cpuPool,
			// PrismDB's per-op CPU: no memtable, no block decode, no
			// multi-level probing — the paper measures it saving ~1.9×
			// CPU versus LSM engines (§7.2).
			CPU: core.CPUCosts{
				OpBase:               2 * time.Microsecond,
				IndexOp:              1 * time.Microsecond,
				BloomCheck:           300 * time.Nanosecond,
				MergePerKey:          1 * time.Microsecond,
				PreciseScanPerObject: 2 * time.Microsecond,
				ApproxPerBucket:      100 * time.Nanosecond,
			},
		}
		if opts.TargetSSTBytes < 64<<10 {
			opts.TargetSSTBytes = 64 << 10
		}
		if !setup.DisablePromotions {
			opts.ReadTrigger = core.DefaultReadTrigger(sc.Keys)
		}
		db, err := core.Open(opts)
		if err != nil {
			return nil, err
		}
		r.prism = db
		r.eng = &prismEngine{db: db}
	default:
		cfg := lsm.Config{
			Clients: 8,
			// The LSM's cache models block cache + OS page cache
			// together: the paper gives LSMs 20% of DRAM as block cache
			// and the rest serves reads through the kernel page cache.
			BlockCacheBytes: dram,
			FsyncWAL:        setup.FsyncWAL,
			Prefetch:        !setup.PrefetchOff,
			Seed:            42,
			CPUPool:         cpuPool,
			// RocksDB-style per-op CPU: memtable probe, bloom checks per
			// level, block decode and binary search (~2× PrismDB's).
			OpBase:      6 * time.Microsecond,
			MergePerKey: 1500 * time.Nanosecond,
		}
		if setup.SingleTier != "" {
			// Single-tier tree: standard 10× leveling.
			cfg.MemtableBytes = maxI64(datasetBytes/64, 64<<10)
			cfg.TargetSSTBytes = cfg.MemtableBytes
			cfg.L1TargetBytes = maxI64(datasetBytes/16, 128<<10)
		} else {
			// Multi-tier tree shaped like §3: L0–L3 on NVM hold the NVM
			// fraction of data, L4 on flash holds the rest. With ratio
			// r = 4, L1+L2+L3 = L1·(1+4+16), so L1 = f·D/21.
			f := setup.NVMFraction
			if f <= 0 {
				f = 1.0 / 6
			}
			nvmData := int64(f * float64(datasetBytes))
			cfg.LevelRatio = 4
			cfg.L1TargetBytes = maxI64(nvmData/21, 128<<10)
			cfg.TargetSSTBytes = maxI64(cfg.L1TargetBytes/2, 64<<10)
			cfg.MemtableBytes = cfg.TargetSSTBytes
			cfg.NVMLevels = 4
			// Re-size the NVM device to fit the tree's NVM share plus
			// compaction transients (the experiment's cost label comes
			// from NVMFraction, not device headroom).
			levelSum := cfg.L1TargetBytes * (1 + 4 + 16)
			nvmCap := 2*levelSum + 16*cfg.TargetSSTBytes
			r.nvm = simdev.New(simdev.NVMParams(nvmCap))
		}
		switch setup.System {
		case SysRocks:
			if setup.SingleTier != "" {
				cfg.Mode = lsm.Single
				cfg.Primary = single
			} else {
				cfg.Mode = lsm.Het
				cfg.NVM, cfg.Flash = r.nvm, r.flash
			}
		case SysRocksL2C:
			cfg.Mode = lsm.L2Cache
			cfg.NVM, cfg.Flash = r.nvm, r.flash
			cfg.NVMCacheBytes = int64(setup.NVMFraction * float64(datasetBytes))
		case SysRocksRA:
			cfg.Mode = lsm.RA
			cfg.NVM, cfg.Flash = r.nvm, r.flash
			cfg.TrackerCapacity = sc.Keys / 5
		case SysMutant:
			cfg.Mode = lsm.MutantMode
			cfg.NVM, cfg.Flash = r.nvm, r.flash
			cfg.MigrateEvery = maxInt(sc.Keys/4, 1000)
		case SysSpanDB:
			cfg.Mode = lsm.SpanDBMode
			cfg.NVM, cfg.Flash = r.nvm, r.flash
		}
		db, err := lsm.Open(cfg)
		if err != nil {
			return nil, err
		}
		r.lsm = db
		r.eng = lsmEngine{db}
	}
	return r, nil
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// trackerCap sizes the tracker: TrackerFraction of the key space, default
// the paper's 20%.
func trackerCap(setup Setup, sc Scale) int {
	f := setup.TrackerFraction
	if f <= 0 {
		f = 0.2
	}
	n := int(float64(sc.Keys) * f)
	if n < 64 {
		n = 64
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Run executes one experiment: load, warm-up, measure.
func Run(setup Setup, sc Scale, wl workload.Config, label string) (*Result, error) {
	r, err := build(setup, sc, wl)
	if err != nil {
		return nil, err
	}
	gen := workload.NewGenerator(wl)

	// Load phase.
	for i := 0; i < sc.Keys; i++ {
		if _, err := r.eng.Put(gen.LoadKey(i), gen.LoadValue(i)); err != nil {
			return nil, fmt.Errorf("bench: load key %d: %w", i, err)
		}
	}
	// Warm-up.
	if err := r.driveOps(gen, sc.WarmupOps, nil, nil, nil); err != nil {
		return nil, fmt.Errorf("bench: warmup: %w", err)
	}

	// Measure: align all worker clocks to a common origin first, so the
	// max-clock throughput accounting isn't skewed by load-phase drift.
	r.eng.AdvanceAll()
	r.eng.ResetStats()
	r.nvm.ResetStats()
	if r.flash != r.nvm {
		r.flash.ResetStats()
	}
	startElapsed := r.eng.Elapsed()
	res := &Result{
		Label:      label,
		ReadHist:   metrics.NewHistogram(),
		UpdateHist: metrics.NewHistogram(),
		ScanHist:   metrics.NewHistogram(),
		CostPerGB:  costPerGB(setup),
	}
	hostStart := time.Now()
	if err := r.driveOps(gen, sc.Ops, res.ReadHist, res.UpdateHist, res.ScanHist); err != nil {
		return nil, fmt.Errorf("bench: measure: %w", err)
	}
	res.HostElapsed = time.Since(hostStart)
	if res.HostElapsed > 0 {
		res.HostKops = float64(sc.Ops) / res.HostElapsed.Seconds() / 1000
	}
	res.Ops = sc.Ops
	res.Elapsed = r.eng.Elapsed() - startElapsed
	if res.Elapsed > 0 {
		res.ThroughputKops = float64(sc.Ops) / res.Elapsed.Seconds() / 1000
	}
	total := metrics.NewHistogram()
	total.Merge(res.ReadHist)
	total.Merge(res.UpdateHist)
	total.Merge(res.ScanHist)
	res.MeanLatency = total.Mean()

	if r.prism != nil {
		st := r.prism.Stats()
		res.Prism = &st
	}
	if r.lsm != nil {
		st := r.lsm.Stats()
		res.LSM = &st
	}
	fst := r.flash.Stats()
	res.FlashWritten = fst.WriteBytes
	res.FlashRead = fst.ReadBytes
	res.FlashBusy = fst.BusyTime
	res.FlashQueue = fst.QueueTime
	nst := r.nvm.Stats()
	res.NVMWritten = nst.WriteBytes
	res.NVMBusy = nst.BusyTime
	res.NVMQueue = nst.QueueTime
	res.FlashWearBytes = r.flash.WearBytes()
	return res, nil
}

// driveOps executes n generated operations. For PrismDB the serial driver
// routes ops to per-partition queues and always executes the next op of the
// partition whose clock is furthest behind — discrete-event-style lockstep
// that keeps shared-device and shared-CPU queueing causally consistent.
// (The LSM engine does the equivalent internally by issuing each request on
// its furthest-behind client clock.) With Setup.ParallelDriver the
// per-partition queues are consumed by concurrent workers instead; see
// driveOpsParallel.
func (r *rig) driveOps(gen *workload.Generator, n int, rh, uh, sh *metrics.Histogram) error {
	if r.prism == nil {
		for i := 0; i < n; i++ {
			if err := applyOp(r.eng, gen.Next(), rh, uh, sh); err != nil {
				return err
			}
		}
		return nil
	}
	if r.setup.ParallelDriver {
		return r.driveOpsParallel(gen, n, rh, uh, sh)
	}
	parts := r.prism.Partitions()
	queues, err := workload.Shard(gen, n, parts, r.prism.PartitionOf)
	if err != nil {
		return err
	}
	clocks := make([]time.Duration, parts)
	for i := 0; i < parts; i++ {
		clocks[i] = r.prism.PartitionClock(i)
	}
	remaining := n
	for remaining > 0 {
		best := -1
		for i := range queues {
			if len(queues[i]) == 0 {
				continue
			}
			if best < 0 || clocks[i] < clocks[best] {
				best = i
			}
		}
		op := queues[best][0]
		queues[best] = queues[best][1:]
		if err := applyOp(r.eng, op, rh, uh, sh); err != nil {
			return err
		}
		// Every op — scans included — charges only its issuing partition's
		// clock (the iterator reads foreign partitions' data but never
		// advances their clocks), so one clock refresh suffices.
		clocks[best] = r.prism.PartitionClock(best)
		remaining--
	}
	return nil
}

// applyOp dispatches one generated operation, recording latency by kind.
func applyOp(eng kvEngine, op workload.Op, rh, uh, sh *metrics.Histogram) error {
	switch op.Kind {
	case workload.OpRead:
		_, lat, err := eng.Get(op.Key)
		if err != nil {
			return err
		}
		if rh != nil {
			rh.Record(lat)
		}
	case workload.OpUpdate, workload.OpInsert:
		lat, err := eng.Put(op.Key, op.Value)
		if err != nil {
			return err
		}
		if uh != nil {
			uh.Record(lat)
		}
	case workload.OpScan:
		lat, err := eng.Scan(op.Key, op.ScanLen)
		if err != nil {
			return err
		}
		if sh != nil {
			sh.Record(lat)
		}
	case workload.OpDelete:
		lat, err := eng.Delete(op.Key)
		if err != nil {
			return err
		}
		if uh != nil {
			uh.Record(lat)
		}
	case workload.OpRMW:
		_, lat1, err := eng.Get(op.Key)
		if err != nil {
			return err
		}
		lat2, err := eng.Put(op.Key, op.Value)
		if err != nil {
			return err
		}
		if uh != nil {
			uh.Record(lat1 + lat2)
		}
	}
	return nil
}

// table prints aligned rows.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	for _, row := range rows {
		line(row)
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func us(d time.Duration) string {
	return fmt.Sprintf("%.1fµs", float64(d)/1000)
}
