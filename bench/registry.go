package bench

import (
	"fmt"
	"io"
	"strings"
)

// Experiment is one entry of the evaluation suite: a stable ID (the
// cmd/prismbench -exp argument), a one-line description, and a runner.
type Experiment struct {
	ID   string
	Desc string
	Run  func(w io.Writer, sc Scale) error
}

// Experiments returns the registry in canonical run order (what -exp all
// executes). cmd/prismbench derives its flag help, its -list output, and
// its dispatch from this list, so adding an experiment here is the whole
// job — there is no second list to keep in sync.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "device characteristics: endurance, cost, 4KB read latency",
			func(w io.Writer, sc Scale) error { return Table1(w) }},
		{"table2", "single-tier vs multi-tier on YCSB-A (Zipf 0.8)",
			func(w io.Writer, sc Scale) error { _, err := Table2(w, sc); return err }},
		{"fig2", "multi-tier RocksDB breakdowns: compaction share, read sources",
			func(w io.Writer, sc Scale) error { _, err := Fig2(w, sc); return err }},
		{"fig5", "tracker clock-value distributions across YCSB mixes",
			func(w io.Writer, sc Scale) error { _, err := Fig5(w, sc); return err }},
		{"fig6", "compaction policies: approx vs precise MSC vs random",
			func(w io.Writer, sc Scale) error { _, err := Fig6(w, sc); return err }},
		{"fig9", "throughput vs cost across device mixes",
			func(w io.Writer, sc Scale) error { _, err := Fig9(w, sc); return err }},
		{"fig10", "YCSB A-F throughput sweep across systems",
			func(w io.Writer, sc Scale) error { _, err := Fig10(w, sc); return err }},
		{"fig11", "skew sweep: throughput and p50 vs zipfian theta",
			func(w io.Writer, sc Scale) error { _, err := Fig11(w, sc); return err }},
		{"fig12", "device lifetime under production write rates",
			func(w io.Writer, sc Scale) error { _, err := Fig12(w, sc); return err }},
		{"fig13", "synchronous-logging (fsync WAL) comparison",
			func(w io.Writer, sc Scale) error { _, err := Fig13(w, sc); return err }},
		{"fig14a", "read latency CDFs",
			func(w io.Writer, sc Scale) error { _, err := Fig14a(w, sc); return err }},
		{"fig14b", "promotion ablation: NVM read ratio over time",
			func(w io.Writer, sc Scale) error { _, err := Fig14b(w, sc); return err }},
		{"fig14c", "pinning-threshold sweep",
			func(w io.Writer, sc Scale) error { _, err := Fig14c(w, sc); return err }},
		{"fig14d", "partition scaling",
			func(w io.Writer, sc Scale) error { _, err := Fig14d(w, sc); return err }},
		{"table5", "Twitter production-trace mixes",
			func(w io.Writer, sc Scale) error { _, err := Table5(w, sc); return err }},
		{"ycsbe", "scan-heavy YCSB-E: serial vs parallel driver agreement",
			func(w io.Writer, sc Scale) error { _, err := YCSBE(w, sc); return err }},
	}
}

// ExperimentIDs returns the registry's IDs in run order.
func ExperimentIDs() []string {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return ids
}

// FindExperiment resolves an ID (case-insensitive).
func FindExperiment(id string) (Experiment, bool) {
	id = strings.ToLower(id)
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunExperiment executes one registry entry by ID, or every entry for
// "all", writing each experiment's output under a == header.
func RunExperiment(w io.Writer, id string, sc Scale) error {
	if strings.EqualFold(id, "all") {
		for _, e := range Experiments() {
			fmt.Fprintf(w, "\n== %s ==\n", e.ID)
			if err := e.Run(w, sc); err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil
	}
	e, ok := FindExperiment(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q (have: %s)",
			id, strings.Join(ExperimentIDs(), " "))
	}
	fmt.Fprintf(w, "\n== %s ==\n", e.ID)
	if err := e.Run(w, sc); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	return nil
}
