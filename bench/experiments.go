package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/msc"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/workload"
)

// Table1 prints the device-characteristics table (Table 1): rated
// endurance, cost, and the measured 4 KB random-read latency of the
// simulated devices.
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: NVM (Optane SSD) vs dense flash (QLC)")
	devs := []struct {
		name string
		p    simdev.Params
	}{
		{"NVM", simdev.NVMParams(1 << 30)},
		{"QLC", simdev.QLCParams(1 << 30)},
	}
	rows := [][]string{}
	for _, d := range devs {
		dev := simdev.New(d.p)
		clk := simdev.NewClock()
		dev.AccessClk(clk, simdev.OpRead, 4096)
		rows = append(rows, []string{
			d.name,
			fmt.Sprintf("%.1f", d.p.DWPD),
			fmt.Sprintf("$%.2f", d.p.CostPerGB),
			us(clk.Elapsed()),
		})
	}
	table(w, []string{"device", "lifetime(DWPD)", "cost($/GB)", "avg 4KB read"}, rows)
	return nil
}

// Table2 compares single-tier and multi-tier configurations on YCSB-A with
// Zipf 0.8 (Table 2): RocksDB on NVM, QLC, and het, and PrismDB het.
func Table2(w io.Writer, sc Scale) ([]*Result, error) {
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.8, 1)
	runs := []struct {
		label string
		setup Setup
	}{
		{"rocksdb-nvm", Setup{System: SysRocks, SingleTier: TierNVM}},
		{"rocksdb-qlc", Setup{System: SysRocks, SingleTier: TierQLC}},
		{"rocksdb-het", Setup{System: SysRocks, NVMFraction: 0.11}},
		{"prismdb-het", Setup{System: SysPrism, NVMFraction: 0.11}},
	}
	fmt.Fprintln(w, "Table 2: single-tier vs multi-tier (YCSB-A, Zipf 0.8; het = 11% NVM)")
	var out []*Result
	rows := [][]string{}
	for _, r := range runs {
		res, err := Run(r.setup, sc, wl, r.label)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
		rows = append(rows, []string{r.label, f1(res.ThroughputKops), "$" + f2(res.CostPerGB)})
	}
	table(w, []string{"config", "tput(Kops/s)", "cost($/GB)"}, rows)
	return out, nil
}

// Fig2 reproduces the multi-tier RocksDB breakdowns of §3: (a) share of
// compaction time spent in the NVM tier vs QLC, and (b) the distribution
// of reads across memtable, block cache, and levels.
func Fig2(w io.Writer, sc Scale) (*Result, error) {
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.99, 1)
	res, err := Run(Setup{System: SysRocks, NVMFraction: 1.0 / 6}, sc, wl, "rocksdb-het")
	if err != nil {
		return nil, err
	}
	st := res.LSM
	totalComp := st.CompactionTimeNVM + st.CompactionTimeFlash
	fmt.Fprintln(w, "Fig 2a: compaction time share by tier (multi-tier RocksDB, YCSB-A)")
	if totalComp > 0 {
		table(w, []string{"tier", "percent"}, [][]string{
			{"nvm", f1(100 * float64(st.CompactionTimeNVM) / float64(totalComp))},
			{"qlc", f1(100 * float64(st.CompactionTimeFlash) / float64(totalComp))},
		})
	}
	fmt.Fprintln(w, "Fig 2b: read distribution across sources")
	var totalReads int64 = st.ReadsMemtable + st.ReadsBlockCache + st.ReadsMiss
	for _, n := range st.ReadsPerLevel {
		totalReads += n
	}
	rows := [][]string{
		{"memtable", f1(100 * float64(st.ReadsMemtable) / float64(totalReads))},
		{"blockcache", f1(100 * float64(st.ReadsBlockCache) / float64(totalReads))},
	}
	for i, n := range st.ReadsPerLevel {
		rows = append(rows, []string{fmt.Sprintf("L%d", i), f1(100 * float64(n) / float64(totalReads))})
	}
	table(w, []string{"source", "percent"}, rows)
	return res, nil
}

// Fig5 records the tracker's clock-value distribution under four YCSB
// workloads (Fig 5) by running each against PrismDB and reading the
// distribution.
func Fig5(w io.Writer, sc Scale) (map[string][4]float64, error) {
	fmt.Fprintln(w, "Fig 5: clock value distributions (percent of tracked keys)")
	out := map[string][4]float64{}
	rows := [][]string{}
	for _, wb := range []byte{'A', 'B', 'D', 'F'} {
		wl, _ := workload.YCSB(wb, sc.Keys, sc.ValueSize, 0.99, 1)
		r, err := build(Setup{System: SysPrism, NVMFraction: 1.0 / 6}, sc, wl)
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(wl)
		for i := 0; i < sc.Keys; i++ {
			r.eng.Put(gen.LoadKey(i), gen.LoadValue(i))
		}
		for i := 0; i < sc.Ops; i++ {
			if err := applyOp(r.eng, gen.Next(), nil, nil, nil); err != nil {
				return nil, err
			}
		}
		dist := r.prism.ClockDistribution()
		total := 0
		for _, n := range dist {
			total += n
		}
		var pct [4]float64
		row := []string{string(rune(wb))}
		for v := 0; v < 4; v++ {
			if total > 0 {
				pct[v] = 100 * float64(dist[v]) / float64(total)
			}
			row = append(row, f1(pct[v]))
		}
		out["ycsb-"+string(rune(wb|0x20))] = pct
		rows = append(rows, row)
	}
	table(w, []string{"workload", "clk-0%", "clk-1%", "clk-2%", "clk-3%"}, rows)
	return out, nil
}

// Fig6 compares precise-MSC, approx-MSC, and random-selection on YCSB-A
// Zipf 0.99: throughput, flash write I/O, and average compaction time.
func Fig6(w io.Writer, sc Scale) (map[string]*Result, error) {
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.99, 1)
	fmt.Fprintln(w, "Fig 6: MSC policy comparison (YCSB-A, Zipf 0.99)")
	out := map[string]*Result{}
	rows := [][]string{}
	for _, pol := range []msc.Policy{msc.Precise, msc.Approx, msc.Random} {
		res, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Policy: pol}, sc, wl, pol.String())
		if err != nil {
			return nil, err
		}
		out[pol.String()] = res
		avgComp := time.Duration(0)
		if res.Prism.Compactions > 0 {
			avgComp = res.Prism.CompactionTime / time.Duration(res.Prism.Compactions)
		}
		rows = append(rows, []string{
			pol.String(),
			f1(res.ThroughputKops),
			fmt.Sprintf("%.1f", float64(res.FlashWritten)/(1<<20)),
			fmt.Sprintf("%.2fms", avgComp.Seconds()*1000),
		})
	}
	table(w, []string{"policy", "tput(Kops/s)", "flash write(MB)", "avg compaction"}, rows)
	return out, nil
}

// Fig9 sweeps throughput vs storage cost across seven configurations and
// five systems (Fig 9).
func Fig9(w io.Writer, sc Scale) (map[string]*Result, error) {
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.99, 1)
	fmt.Fprintln(w, "Fig 9: throughput vs storage cost (YCSB-A, Zipf 0.99)")
	runs := []struct {
		label string
		setup Setup
	}{
		{"rocksdb-qlc", Setup{System: SysRocks, SingleTier: TierQLC}},
		{"rocksdb-tlc", Setup{System: SysRocks, SingleTier: TierTLC}},
		{"rocksdb-nvm", Setup{System: SysRocks, SingleTier: TierNVM}},
		{"rocksdb-het5", Setup{System: SysRocks, NVMFraction: 0.05}},
		{"rocksdb-het10", Setup{System: SysRocks, NVMFraction: 0.11}},
		{"rocksdb-het20", Setup{System: SysRocks, NVMFraction: 0.20}},
		{"rocksdb-het50", Setup{System: SysRocks, NVMFraction: 0.50}},
		{"rocksdb-l2c", Setup{System: SysRocksL2C, NVMFraction: 0.11}},
		{"rocksdb-RA", Setup{System: SysRocksRA, NVMFraction: 0.11}},
		{"mutant", Setup{System: SysMutant, NVMFraction: 0.11}},
		{"prismdb-het5", Setup{System: SysPrism, NVMFraction: 0.05}},
		{"prismdb-het10", Setup{System: SysPrism, NVMFraction: 0.11}},
		{"prismdb-het20", Setup{System: SysPrism, NVMFraction: 0.20}},
		{"prismdb-het50", Setup{System: SysPrism, NVMFraction: 0.50}},
	}
	out := map[string]*Result{}
	rows := [][]string{}
	for _, r := range runs {
		res, err := Run(r.setup, sc, wl, r.label)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", r.label, err)
		}
		out[r.label] = res
		rows = append(rows, []string{r.label, "$" + f2(res.CostPerGB), f1(res.ThroughputKops)})
	}
	table(w, []string{"config", "cost($/GB)", "tput(Kops/s)"}, rows)
	return out, nil
}

// Fig10 sweeps YCSB A–F for the main systems: throughput plus median and
// p99 latency normalized to RocksDB (Fig 10).
func Fig10(w io.Writer, sc Scale) (map[string]map[byte]*Result, error) {
	fmt.Fprintln(w, "Fig 10: YCSB sweep (Zipf 0.99; latency normalized to rocksdb-het)")
	systems := []struct {
		label string
		setup Setup
	}{
		{"rocksdb", Setup{System: SysRocks, NVMFraction: 1.0 / 6}},
		{"rocksdb-l2c", Setup{System: SysRocksL2C, NVMFraction: 1.0 / 6}},
		{"mutant", Setup{System: SysMutant, NVMFraction: 1.0 / 6}},
		{"prismdb", Setup{System: SysPrism, NVMFraction: 1.0 / 6}},
	}
	out := map[string]map[byte]*Result{}
	rows := [][]string{}
	for _, wb := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		wl, _ := workload.YCSB(wb, sc.Keys, sc.ValueSize, 0.99, 1)
		var base *Result
		for _, sys := range systems {
			res, err := Run(sys.setup, sc, wl, fmt.Sprintf("%s/ycsb-%c", sys.label, wb))
			if err != nil {
				return nil, fmt.Errorf("%s ycsb-%c: %w", sys.label, wb, err)
			}
			if out[sys.label] == nil {
				out[sys.label] = map[byte]*Result{}
			}
			out[sys.label][wb] = res
			if sys.label == "rocksdb" {
				base = res
			}
			nMed, nP99 := 1.0, 1.0
			if base != nil && base.MeanLatency > 0 {
				h, bh := res.ReadHist, base.ReadHist
				if wb == 'E' {
					h, bh = res.ScanHist, base.ScanHist
				}
				if bh.Quantile(0.5) > 0 {
					nMed = float64(h.Quantile(0.5)) / float64(bh.Quantile(0.5))
				}
				if bh.Quantile(0.99) > 0 {
					nP99 = float64(h.Quantile(0.99)) / float64(bh.Quantile(0.99))
				}
			}
			rows = append(rows, []string{
				fmt.Sprintf("ycsb-%c", wb), sys.label,
				f1(res.ThroughputKops), f2(nMed), f2(nP99),
			})
		}
	}
	table(w, []string{"workload", "system", "tput(Kops/s)", "norm-p50", "norm-p99"}, rows)
	return out, nil
}

// Fig11 sweeps the zipfian parameter on YCSB-A: p50/p99 read and update
// latency for PrismDB vs multi-tier RocksDB (Fig 11).
func Fig11(w io.Writer, sc Scale) (map[string]map[string]*Result, error) {
	fmt.Fprintln(w, "Fig 11: skew sweep (YCSB-A)")
	thetas := []struct {
		name  string
		theta float64
		unif  bool
	}{
		{"unif", 0, true}, {"0.4", 0.4, false}, {"0.6", 0.6, false},
		{"0.8", 0.8, false}, {"0.99", 0.99, false}, {"1.2", 1.2, false}, {"1.4", 1.4, false},
	}
	out := map[string]map[string]*Result{"rocksdb": {}, "prismdb": {}}
	rows := [][]string{}
	for _, th := range thetas {
		wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, th.theta, 1)
		if th.unif {
			wl.Dist = workload.DistUniform
		}
		for _, sys := range []struct {
			label string
			setup Setup
		}{
			{"rocksdb", Setup{System: SysRocks, NVMFraction: 1.0 / 6}},
			{"prismdb", Setup{System: SysPrism, NVMFraction: 1.0 / 6}},
		} {
			res, err := Run(sys.setup, sc, wl, sys.label+"/"+th.name)
			if err != nil {
				return nil, err
			}
			out[sys.label][th.name] = res
			rows = append(rows, []string{
				th.name, sys.label,
				us(res.ReadHist.Quantile(0.5)), us(res.ReadHist.Quantile(0.99)),
				us(res.UpdateHist.Quantile(0.5)), us(res.UpdateHist.Quantile(0.99)),
			})
		}
	}
	table(w, []string{"zipf", "system", "read-p50", "read-p99", "upd-p50", "upd-p99"}, rows)
	return out, nil
}

// Fig12 evaluates QLC lifetime under different workload write intensities
// (Fig 12): write amplification is measured from a PrismDB run, then the
// endurance model projects drive lifetime for a 600 GB deployment at
// production request rates, annotated with the three applications the
// paper highlights (from Cao et al., FAST'20).
func Fig12(w io.Writer, sc Scale) (map[string]float64, error) {
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.99, 1)
	res, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6}, sc, wl, "wa-probe")
	if err != nil {
		return nil, err
	}
	clientWriteBytes := float64(res.UpdateHist.Count()) * float64(sc.ValueSize)
	wa := 1.0
	if clientWriteBytes > 0 {
		wa = float64(res.FlashWritten) / clientWriteBytes
	}
	if wa < 0.1 {
		wa = 0.1 // pinning may absorb nearly all writes at small scale
	}
	const (
		dbBytes   = 600 << 30 // 600 GB deployment (§7.2)
		reqPerSec = 50000.0   // production request rate (Cao et al.)
		objBytes  = 1024.0
	)
	qlc := simdev.New(simdev.QLCParams(dbBytes))
	tbw := qlc.TotalWriteBudget()
	apps := []struct {
		name      string
		writeFrac float64
	}{
		{"UP2X", 0.90}, {"ZippyDB", 0.25}, {"UDB", 0.08},
		{"w10%", 0.10}, {"w50%", 0.50}, {"w90%", 0.90}, {"w1%", 0.01},
	}
	fmt.Fprintf(w, "Fig 12: QLC lifetime (600GB DB, %.0f ops/s, measured flash WA=%.2f)\n", reqPerSec, wa)
	out := map[string]float64{}
	rows := [][]string{}
	for _, a := range apps {
		bytesPerDay := reqPerSec * a.writeFrac * objBytes * wa * 86400
		years := tbw / bytesPerDay / 365
		if years > 10 {
			years = 10 // plot cap, as in the figure
		}
		out[a.name] = years
		rows = append(rows, []string{a.name, fmt.Sprintf("%.0f%%", a.writeFrac*100), f2(years)})
	}
	table(w, []string{"workload", "write share", "lifetime(years, cap 10)"}, rows)
	return out, nil
}

// Fig13 compares throughput and normalized p99 with fsync enabled
// (Fig 13): RocksDB group commit, SpanDB SPDK logging, PrismDB synchronous
// slabs, on YCSB-A and YCSB-B.
func Fig13(w io.Writer, sc Scale) (map[string]map[byte]*Result, error) {
	fmt.Fprintln(w, "Fig 13: fsync-enabled performance (p99 normalized to rocksdb)")
	out := map[string]map[byte]*Result{}
	rows := [][]string{}
	for _, wb := range []byte{'A', 'B'} {
		wl, _ := workload.YCSB(wb, sc.Keys, sc.ValueSize, 0.99, 1)
		var base *Result
		for _, sys := range []struct {
			label string
			setup Setup
		}{
			{"rocksdb", Setup{System: SysRocks, NVMFraction: 1.0 / 6, FsyncWAL: true}},
			{"spandb", Setup{System: SysSpanDB, NVMFraction: 1.0 / 6, FsyncWAL: true}},
			{"prismdb", Setup{System: SysPrism, NVMFraction: 1.0 / 6}}, // always durable
		} {
			res, err := Run(sys.setup, sc, wl, fmt.Sprintf("%s/ycsb-%c", sys.label, wb))
			if err != nil {
				return nil, err
			}
			if out[sys.label] == nil {
				out[sys.label] = map[byte]*Result{}
			}
			out[sys.label][wb] = res
			if sys.label == "rocksdb" {
				base = res
			}
			norm := 1.0
			if base != nil && base.UpdateHist.Quantile(0.99) > 0 {
				norm = float64(res.UpdateHist.Quantile(0.99)) / float64(base.UpdateHist.Quantile(0.99))
			}
			rows = append(rows, []string{
				fmt.Sprintf("ycsb-%c", wb), sys.label, f1(res.ThroughputKops), f2(norm),
			})
		}
	}
	table(w, []string{"workload", "system", "tput(Kops/s)", "norm-p99(update)"}, rows)
	return out, nil
}

// Fig14a prints the read-latency CDF on YCSB-B for PrismDB vs multi-tier
// RocksDB (Fig 14a).
func Fig14a(w io.Writer, sc Scale) (map[string]*Result, error) {
	wl, _ := workload.YCSB('B', sc.Keys, sc.ValueSize, 0.99, 1)
	fmt.Fprintln(w, "Fig 14a: read latency CDF (YCSB-B)")
	out := map[string]*Result{}
	rows := [][]string{}
	for _, sys := range []struct {
		label string
		setup Setup
	}{
		{"rocksdb", Setup{System: SysRocks, NVMFraction: 1.0 / 6}},
		{"prismdb", Setup{System: SysPrism, NVMFraction: 1.0 / 6}},
	} {
		res, err := Run(sys.setup, sc, wl, sys.label)
		if err != nil {
			return nil, err
		}
		out[sys.label] = res
		for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
			rows = append(rows, []string{sys.label, fmt.Sprintf("p%g", q*100), us(res.ReadHist.Quantile(q))})
		}
	}
	table(w, []string{"system", "quantile", "latency"}, rows)
	return out, nil
}

// Fig14bPoint is one timeline sample of the promotions experiment.
type Fig14bPoint struct {
	Ops          int
	ThroughputK  float64
	NVMReadRatio float64
}

// Fig14b measures the effect of promotions under read-only YCSB-C: with
// promotions enabled the NVM read ratio climbs over time, lifting
// throughput (Fig 14b).
func Fig14b(w io.Writer, sc Scale) (map[string][]Fig14bPoint, error) {
	fmt.Fprintln(w, "Fig 14b: promotions under read-only YCSB-C (timeline)")
	out := map[string][]Fig14bPoint{}
	rows := [][]string{}
	for _, variant := range []struct {
		label   string
		disable bool
	}{
		{"noprom", true},
		{"prom", false},
	} {
		wl, _ := workload.YCSB('C', sc.Keys, sc.ValueSize, 0.99, 1)
		r, err := build(Setup{System: SysPrism, NVMFraction: 1.0 / 6, DisablePromotions: variant.disable}, sc, wl)
		if err != nil {
			return nil, err
		}
		gen := workload.NewGenerator(wl)
		for i := 0; i < sc.Keys; i++ {
			r.eng.Put(gen.LoadKey(i), gen.LoadValue(i))
		}
		const segments = 8
		segOps := sc.Ops / segments
		var pts []Fig14bPoint
		for seg := 0; seg < segments; seg++ {
			r.prism.ResetStats()
			before := r.eng.Elapsed()
			for i := 0; i < segOps; i++ {
				if err := applyOp(r.eng, gen.Next(), nil, nil, nil); err != nil {
					return nil, err
				}
			}
			elapsed := r.eng.Elapsed() - before
			st := r.prism.Stats()
			pt := Fig14bPoint{Ops: (seg + 1) * segOps, NVMReadRatio: st.NVMReadRatio()}
			if elapsed > 0 {
				pt.ThroughputK = float64(segOps) / elapsed.Seconds() / 1000
			}
			pts = append(pts, pt)
			rows = append(rows, []string{variant.label, fmt.Sprintf("%d", pt.Ops),
				f1(pt.ThroughputK), f2(pt.NVMReadRatio)})
		}
		out[variant.label] = pts
	}
	table(w, []string{"variant", "ops", "tput(Kops/s)", "nvm read ratio"}, rows)
	return out, nil
}

// Fig14c sweeps the pinning threshold for a read-heavy, balanced, and
// write-heavy mix (Fig 14c).
func Fig14c(w io.Writer, sc Scale) (map[string]map[int]*Result, error) {
	fmt.Fprintln(w, "Fig 14c: pinning threshold sweep")
	mixes := []struct {
		name string
		mix  workload.Mix
	}{
		{"5/95", workload.Mix{Read: 0.05, Update: 0.95}},
		{"50/50", workload.Mix{Read: 0.5, Update: 0.5}},
		{"95/5", workload.Mix{Read: 0.95, Update: 0.05}},
	}
	out := map[string]map[int]*Result{}
	rows := [][]string{}
	for _, m := range mixes {
		out[m.name] = map[int]*Result{}
		for _, pct := range []int{1, 25, 50, 70, 90} {
			wl := workload.Config{
				Name: "pin-sweep", Keys: sc.Keys, Mix: m.mix,
				Dist: workload.DistZipfian, Theta: 0.99,
				ValueSize: sc.ValueSize, Seed: 1,
			}
			res, err := Run(Setup{
				System: SysPrism, NVMFraction: 1.0 / 6,
				PinningThreshold: float64(pct) / 100,
			}, sc, wl, fmt.Sprintf("%s@%d%%", m.name, pct))
			if err != nil {
				return nil, err
			}
			out[m.name][pct] = res
			rows = append(rows, []string{m.name, fmt.Sprintf("%d%%", pct), f1(res.ThroughputKops)})
		}
	}
	table(w, []string{"mix(r/w)", "pin threshold", "tput(Kops/s)"}, rows)
	return out, nil
}

// Fig14d scales the partition count on YCSB-A (Fig 14d).
func Fig14d(w io.Writer, sc Scale) (map[int]*Result, error) {
	fmt.Fprintln(w, "Fig 14d: throughput vs partitions (YCSB-A)")
	wl, _ := workload.YCSB('A', sc.Keys, sc.ValueSize, 0.99, 1)
	out := map[int]*Result{}
	rows := [][]string{}
	for _, parts := range []int{1, 2, 4, 8, 16} {
		res, err := Run(Setup{System: SysPrism, NVMFraction: 1.0 / 6, Partitions: parts},
			sc, wl, fmt.Sprintf("p=%d", parts))
		if err != nil {
			return nil, err
		}
		out[parts] = res
		rows = append(rows, []string{fmt.Sprintf("%d", parts), f1(res.ThroughputKops)})
	}
	table(w, []string{"partitions", "tput(Kops/s)"}, rows)
	return out, nil
}

// Table5 runs the three Twitter production-trace equivalents on multi-tier
// RocksDB and PrismDB (Table 5).
func Table5(w io.Writer, sc Scale) (map[string]map[string]*Result, error) {
	fmt.Fprintln(w, "Table 5: Twitter production workloads")
	out := map[string]map[string]*Result{}
	rows := [][]string{}
	for _, trace := range []string{"cluster39", "cluster19", "cluster51"} {
		wl, err := workload.Twitter(trace, sc.Keys, 1)
		if err != nil {
			return nil, err
		}
		out[trace] = map[string]*Result{}
		for _, sys := range []struct {
			label string
			setup Setup
		}{
			{"rocksdb", Setup{System: SysRocks, NVMFraction: 1.0 / 6}},
			{"prismdb", Setup{System: SysPrism, NVMFraction: 1.0 / 6}},
		} {
			res, err := Run(sys.setup, sc, wl, sys.label+"/"+trace)
			if err != nil {
				return nil, err
			}
			out[trace][sys.label] = res
			rows = append(rows, []string{trace, sys.label,
				f1(res.ThroughputKops), us(res.UpdateHist.Mean())})
		}
	}
	table(w, []string{"trace", "system", "tput(Kops/s)", "avg put latency"}, rows)
	return out, nil
}

// YCSBE runs the scan-heavy YCSB-E mix on PrismDB through both drivers and
// the LSM baselines through their client scheduler: the focused view of the
// workload this repo's iterator subsystem exists for. The serial/parallel
// PrismDB pair doubles as a live check of scan clock ownership — the two
// rows' simulated throughput must agree within a few percent, since scans
// charge only their issuing partition's clock.
func YCSBE(w io.Writer, sc Scale) (map[string]*Result, error) {
	fmt.Fprintln(w, "YCSB-E: scan-heavy mix (95% scans, max scan length 100)")
	wl, _ := workload.YCSB('E', sc.Keys, sc.ValueSize, 0.99, 1)
	out := map[string]*Result{}
	rows := [][]string{}
	for _, sys := range []struct {
		label string
		setup Setup
	}{
		{"rocksdb", Setup{System: SysRocks, NVMFraction: 1.0 / 6}},
		{"rocksdb-l2c", Setup{System: SysRocksL2C, NVMFraction: 1.0 / 6}},
		{"prismdb", Setup{System: SysPrism, NVMFraction: 1.0 / 6}},
		{"prismdb-parallel", Setup{System: SysPrism, NVMFraction: 1.0 / 6, ParallelDriver: true}},
	} {
		res, err := Run(sys.setup, sc, wl, sys.label+"/ycsb-e")
		if err != nil {
			return nil, fmt.Errorf("%s ycsb-e: %w", sys.label, err)
		}
		out[sys.label] = res
		rows = append(rows, []string{
			sys.label, f1(res.ThroughputKops),
			us(res.ScanHist.Quantile(0.5)), us(res.ScanHist.Quantile(0.99)),
			f1(res.HostKops),
		})
	}
	table(w, []string{"system", "tput(Kops/s)", "scan-p50", "scan-p99", "host-kops/s"}, rows)
	return out, nil
}

// unused keeps core import stable across refactors.
var _ = core.TierDRAM
