package bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/simdev"
	"github.com/prismdb/prismdb/internal/storage"
)

// benchWALFsync drives a concurrent SET burst against a durable DB and
// reports acknowledged-write throughput for one WAL sync mode. Four writers
// share one partition's WAL, so the sync rows measure what group commit
// buys: in SyncEvery mode every ack waits for an fsync, but concurrent
// appenders ride the same flush, so the cost of the fdatasync is amortized
// across whoever piled up behind it; SyncGroup acks immediately and lets a
// background batcher fsync every FsyncEvery records; SyncNone never fsyncs
// until Close and bounds what durability costs at all.
func benchWALFsync(b *testing.B, mode storage.SyncMode) {
	opts := core.Options{
		Partitions:      1, // one WAL: the group-commit contention worst case
		NVM:             simdev.New(simdev.NVMParams(1 << 30)),
		Flash:           simdev.New(simdev.QLCParams(1 << 30)),
		Cache:           simdev.NewPageCache(64 << 20),
		NVMBudget:       256 << 20, // NVM-resident: no compactions in the timed loop
		TrackerCapacity: 8192,
		KeySpace:        1 << 20,
		Seed:            1,
		DataDir:         b.TempDir(),
		WALSync:         mode,
		WALFsyncEvery:   64,
	}
	db, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()

	const (
		writers = 4
		perW    = 500
		keys    = 1024
	)
	keyBuf := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyBuf[i] = []byte(fmt.Sprintf("user%08d", i))
	}
	val := make([]byte, 512)
	for i := range val {
		val[i] = 'a' + byte(i%26)
	}

	b.SetBytes(int64(writers * perW * len(val)))
	b.ResetTimer()
	var elapsed time.Duration
	for iter := 0; iter < b.N; iter++ {
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				for i := 0; i < perW; i++ {
					k := keyBuf[(seed*2654435761+i*2246822519)%keys]
					if _, err := db.Put(k, val); err != nil {
						b.Errorf("put: %v", err)
						return
					}
				}
			}(w + 1)
		}
		wg.Wait()
		elapsed += time.Since(start)
	}
	total := float64(writers*perW) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds()/1e3, "acked-kops")
	b.ReportMetric(0, "ns/op") // the burst, not b.N, is the unit of work
	// The durability shape behind the throughput row, from the engine's
	// always-on telemetry: how long each fdatasync took and how many
	// records each group commit amortized it across. bench.sh records
	// every ReportMetric unit into BENCH_<date>.json, so these land next
	// to the acked-kops rows.
	ps := db.PersistenceStats()
	b.ReportMetric(float64(ps.FsyncP50)/1e3, "fsync-p50-us")
	b.ReportMetric(float64(ps.FsyncP99)/1e3, "fsync-p99-us")
	b.ReportMetric(float64(ps.GroupCommitBatchP50), "gc-batch-p50")
	b.ReportMetric(float64(ps.GroupCommitBatchP99), "gc-batch-p99")
}

// BenchmarkWALFsyncModes is the durability-cost row for BENCH_<date>.json:
// acknowledged SETs/s against a real data directory under the three WAL
// sync modes. The spread between sync and nosync is the price of
// fsync-per-ack (with group commit recouping most of it under concurrency);
// group should land near nosync while bounding the un-fsynced window.
func BenchmarkWALFsyncModes(b *testing.B) {
	for _, m := range []struct {
		name string
		mode storage.SyncMode
	}{
		{"sync", storage.SyncEvery},
		{"group", storage.SyncGroup},
		{"nosync", storage.SyncNone},
	} {
		b.Run(m.name, func(b *testing.B) {
			benchWALFsync(b, m.mode)
		})
	}
}
