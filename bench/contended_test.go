package bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/prismdb/prismdb/internal/core"
	"github.com/prismdb/prismdb/internal/simdev"
)

// benchContendedGets hammers ONE partition with G goroutines issuing warm
// NVM/DRAM-hit GETs and reports wall-clock throughput. Before the lock-free
// read path, every GET serialized on the partition mutex, so adding
// goroutines to a hot partition bought nothing (and on multi-core hosts,
// cache-line ping-pong made it regress); now concurrent GETs share the
// published read view and only meet at a handful of atomics. On a
// multi-core host the goroutines=8 row should show ≥ 2× the goroutines=1
// wall-Kops; on a single-core host (this repo's CI container) the rows
// collapse to the same figure — the property under test there is "no worse
// than the serialized baseline".
func benchContendedGets(b *testing.B, goroutines int) {
	opts := core.Options{
		Partitions:      1, // one hot partition: the contention worst case
		NVM:             simdev.New(simdev.NVMParams(1 << 30)),
		Flash:           simdev.New(simdev.QLCParams(1 << 30)),
		Cache:           simdev.NewPageCache(64 << 20),
		NVMBudget:       256 << 20, // everything NVM-resident: no compactions
		TrackerCapacity: 8192,
		KeySpace:        1 << 20,
		Seed:            1,
	}
	db, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const keys = 4096
	keyBuf := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyBuf[i] = []byte(fmt.Sprintf("user%08d", i))
		if _, err := db.Put(keyBuf[i], make([]byte, 512)); err != nil {
			b.Fatal(err)
		}
	}
	warm := make([]byte, 0, 1024)
	for _, k := range keyBuf { // page cache, tracker, value buffers
		v, tier, _, err := db.GetBuf(k, warm)
		if err != nil || tier == core.TierMiss {
			b.Fatalf("warm get: tier=%v err=%v", tier, err)
		}
		warm = v[:0]
	}

	const totalOps = 400_000
	perG := totalOps / goroutines
	b.ResetTimer()
	var elapsed time.Duration
	for iter := 0; iter < b.N; iter++ {
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				buf := make([]byte, 0, 1024)
				for i := 0; i < perG; i++ {
					k := keyBuf[(seed*2654435761+i*2246822519)%keys]
					v, tier, _, err := db.GetBuf(k, buf)
					if err != nil || tier == core.TierMiss {
						b.Errorf("get: tier=%v err=%v", tier, err)
						return
					}
					buf = v[:0]
				}
			}(g + 1)
		}
		wg.Wait()
		elapsed += time.Since(start)
	}
	total := float64(perG*goroutines) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds()/1e3, "wall-kops")
	b.ReportMetric(0, "ns/op") // the burst, not b.N, is the unit of work
}

// BenchmarkContendedGets is the lock-free GET scaling row for
// BENCH_<date>.json: wall-Kops of a single hot partition at 1/2/4/8
// concurrent readers.
func BenchmarkContendedGets(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchContendedGets(b, g)
		})
	}
}

// benchContendedSets hammers ONE partition with G goroutines issuing
// class-stable overwrites (in-place NVM updates, no compactions) and
// reports wall-clock throughput. Under WriteSync every SET takes the
// partition lock and pays the full per-op fixed costs (read-state drain,
// clock fold) itself; under WriteAsync (the default) an uncontended SET
// applies directly as a batch of one on the batch drain cadence, and
// contended SETs ride the owner's MPSC intent ring where the critical
// section, the WAL group append, and the republication amortize over the
// whole batch. The goroutines=8 row should beat the locked path at every
// width. On a multi-core host the margin widens with the burst (real
// batches form); on a single-core host (this repo's CI container) the
// win comes from the per-batch cost amortization alone.
func benchContendedSets(b *testing.B, goroutines int, mode core.WriteMode) {
	opts := core.Options{
		Partitions:      1, // one hot partition: the contention worst case
		NVM:             simdev.New(simdev.NVMParams(1 << 30)),
		Flash:           simdev.New(simdev.QLCParams(1 << 30)),
		Cache:           simdev.NewPageCache(64 << 20),
		NVMBudget:       256 << 20, // everything NVM-resident: no compactions
		TrackerCapacity: 8192,
		KeySpace:        1 << 20,
		Seed:            1,
		WriteMode:       mode,
	}
	db, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const keys = 4096
	keyBuf := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyBuf[i] = []byte(fmt.Sprintf("user%08d", i))
		if _, err := db.Put(keyBuf[i], make([]byte, 512)); err != nil {
			b.Fatal(err)
		}
	}

	const totalOps = 200_000
	perG := totalOps / goroutines
	b.ResetTimer()
	var elapsed time.Duration
	for iter := 0; iter < b.N; iter++ {
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				val := make([]byte, 512) // safe to reuse: Put returns only after apply
				for i := 0; i < perG; i++ {
					k := keyBuf[(seed*2654435761+i*2246822519)%keys]
					if _, err := db.Put(k, val); err != nil {
						b.Errorf("put: %v", err)
						return
					}
				}
			}(g + 1)
		}
		wg.Wait()
		elapsed += time.Since(start)
	}
	total := float64(perG*goroutines) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds()/1e3, "wall-kops")
	b.ReportMetric(0, "ns/op") // the burst, not b.N, is the unit of work
}

// BenchmarkContendedSets is the owner-goroutine write path's scaling row
// for BENCH_<date>.json: wall-Kops of a single hot partition at 1/2/4/8
// concurrent writers through the per-partition intent queue.
func BenchmarkContendedSets(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchContendedSets(b, g, core.WriteAsync)
		})
	}
}

// BenchmarkContendedSetsLocked is the same burst through the legacy locked
// write path (Options.WriteMode = WriteSync) — the baseline the queue must
// beat at every width.
func BenchmarkContendedSetsLocked(b *testing.B) {
	for _, g := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("goroutines=%d", g), func(b *testing.B) {
			benchContendedSets(b, g, core.WriteSync)
		})
	}
}

// BenchmarkContendedMixed is the YCSB-A-shaped row (50% reads, 50%
// updates) on one hot partition at 8 goroutines: lock-free GETs racing the
// owner write queue — the serving mix where both fast paths must coexist.
func BenchmarkContendedMixed(b *testing.B) {
	opts := core.Options{
		Partitions:      1,
		NVM:             simdev.New(simdev.NVMParams(1 << 30)),
		Flash:           simdev.New(simdev.QLCParams(1 << 30)),
		Cache:           simdev.NewPageCache(64 << 20),
		NVMBudget:       256 << 20,
		TrackerCapacity: 8192,
		KeySpace:        1 << 20,
		Seed:            1,
	}
	db, err := core.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	const keys = 4096
	keyBuf := make([][]byte, keys)
	for i := 0; i < keys; i++ {
		keyBuf[i] = []byte(fmt.Sprintf("user%08d", i))
		if _, err := db.Put(keyBuf[i], make([]byte, 512)); err != nil {
			b.Fatal(err)
		}
	}

	const goroutines = 8
	const totalOps = 200_000
	perG := totalOps / goroutines
	b.ResetTimer()
	var elapsed time.Duration
	for iter := 0; iter < b.N; iter++ {
		start := time.Now()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int) {
				defer wg.Done()
				buf := make([]byte, 0, 1024)
				val := make([]byte, 512)
				for i := 0; i < perG; i++ {
					k := keyBuf[(seed*2654435761+i*2246822519)%keys]
					if i%2 == 0 {
						if _, err := db.Put(k, val); err != nil {
							b.Errorf("put: %v", err)
							return
						}
						continue
					}
					v, tier, _, err := db.GetBuf(k, buf)
					if err != nil || tier == core.TierMiss {
						b.Errorf("get: tier=%v err=%v", tier, err)
						return
					}
					buf = v[:0]
				}
			}(g + 1)
		}
		wg.Wait()
		elapsed += time.Since(start)
	}
	total := float64(perG*goroutines) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds()/1e3, "wall-kops")
	b.ReportMetric(0, "ns/op")
}
