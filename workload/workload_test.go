package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZipfianBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipfian(1000, 0.99, false)
	for i := 0; i < 100000; i++ {
		k := z.Next(rng)
		if k < 0 || k >= 1000 {
			t.Fatalf("zipf out of range: %d", k)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	// Unscrambled zipfian: rank 0 must dominate; higher theta more so.
	freq := func(theta float64) float64 {
		rng := rand.New(rand.NewSource(2))
		z := NewZipfian(10000, theta, false)
		hits := 0
		const n = 200000
		for i := 0; i < n; i++ {
			if z.Next(rng) == 0 {
				hits++
			}
		}
		return float64(hits) / n
	}
	f99 := freq(0.99)
	f60 := freq(0.6)
	if f99 < 0.05 {
		t.Fatalf("theta 0.99: rank-0 frequency %f too low", f99)
	}
	if f99 <= f60 {
		t.Fatalf("skew not increasing with theta: %f vs %f", f99, f60)
	}
}

func TestZipfianScrambledSpreads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipfian(10000, 0.99, true)
	// The hottest scrambled key should NOT be key 0 (hash-spread), and
	// overall skew must be preserved.
	counts := map[int]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}
	maxKey, maxCnt := -1, 0
	for k, c := range counts {
		if c > maxCnt {
			maxKey, maxCnt = k, c
		}
	}
	if float64(maxCnt)/n < 0.05 {
		t.Fatalf("scrambling destroyed skew: top frequency %f", float64(maxCnt)/n)
	}
	if maxKey == 0 {
		t.Fatal("scrambled zipfian left hottest key at rank 0")
	}
}

func TestUniformCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := NewUniform(100)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[u.Next(rng)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-n/100) > n/100*0.3 {
			t.Fatalf("uniform key %d count %d deviates >30%%", k, c)
		}
	}
}

func TestLatestPrefersRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 1000
	l := NewLatest(n, 0.99, func() int { return n })
	recent := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		k := l.Next(rng)
		if k < 0 || k >= n {
			t.Fatalf("latest out of range: %d", k)
		}
		if k >= n-100 {
			recent++
		}
	}
	if float64(recent)/draws < 0.5 {
		t.Fatalf("latest distribution not recent-biased: %f in newest 10%%", float64(recent)/draws)
	}
}

func TestKeyOfRoundTrip(t *testing.T) {
	f := func(i uint32) bool {
		return IndexOf(KeyOf(int(i))) == int(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Fixed width ⇒ lexicographic order == numeric order.
	if string(KeyOf(9)) >= string(KeyOf(10)) {
		t.Fatal("key order broken")
	}
}

func TestYCSBMixes(t *testing.T) {
	for _, w := range []byte{'A', 'B', 'C', 'D', 'E', 'F'} {
		cfg, err := YCSB(w, 1000, 100, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		total := cfg.Mix.Read + cfg.Mix.Update + cfg.Mix.Insert + cfg.Mix.Scan + cfg.Mix.RMW
		if math.Abs(total-1.0) > 1e-9 {
			t.Fatalf("YCSB-%c mix sums to %f", w, total)
		}
	}
	if _, err := YCSB('Z', 1000, 100, 0, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	// Spot-check Table 4 proportions.
	a, _ := YCSB('A', 1, 1, 0, 1)
	if a.Mix.Read != 0.5 || a.Mix.Update != 0.5 {
		t.Fatalf("YCSB-A mix %+v", a.Mix)
	}
	d, _ := YCSB('D', 1, 1, 0, 1)
	if d.Dist != DistLatest || d.Mix.Insert != 0.05 {
		t.Fatalf("YCSB-D config %+v", d)
	}
	e, _ := YCSB('E', 1, 1, 0, 1)
	if e.Mix.Scan != 0.95 {
		t.Fatalf("YCSB-E mix %+v", e.Mix)
	}
}

func TestGeneratorOpFrequencies(t *testing.T) {
	cfg, _ := YCSB('B', 10000, 100, 0, 7)
	g := NewGenerator(cfg)
	counts := map[OpKind]int{}
	const n = 50000
	for i := 0; i < n; i++ {
		op := g.Next()
		counts[op.Kind]++
		if len(op.Key) == 0 {
			t.Fatal("empty key")
		}
	}
	readFrac := float64(counts[OpRead]) / n
	if readFrac < 0.93 || readFrac > 0.97 {
		t.Fatalf("YCSB-B read fraction %f, want ≈0.95", readFrac)
	}
	if counts[OpUpdate] == 0 {
		t.Fatal("no updates generated")
	}
	for i := 0; i < n; i++ {
		if op := g.Next(); op.Kind == OpUpdate && len(op.Value) != 100 {
			t.Fatalf("update value size %d", len(op.Value))
		}
	}
}

func TestGeneratorInsertsGrowKeyspace(t *testing.T) {
	cfg, _ := YCSB('D', 1000, 100, 0, 7)
	g := NewGenerator(cfg)
	maxIdx := 0
	for i := 0; i < 20000; i++ {
		op := g.Next()
		if op.Kind == OpInsert {
			idx := IndexOf(op.Key)
			if idx < 1000 {
				t.Fatalf("insert reused existing key %d", idx)
			}
			if idx <= maxIdx {
				t.Fatalf("insert keys not monotone: %d after %d", idx, maxIdx)
			}
			maxIdx = idx
		}
	}
	if g.Keys() <= 1000 {
		t.Fatal("keyspace did not grow")
	}
}

func TestScansHaveLengths(t *testing.T) {
	cfg, _ := YCSB('E', 1000, 100, 0, 7)
	g := NewGenerator(cfg)
	sawScan := false
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind == OpScan {
			sawScan = true
			if op.ScanLen < 1 || op.ScanLen > 100 {
				t.Fatalf("scan len %d", op.ScanLen)
			}
		}
	}
	if !sawScan {
		t.Fatal("YCSB-E generated no scans")
	}
}

func TestTwitterPresets(t *testing.T) {
	for _, name := range []string{"cluster39", "cluster19", "cluster51"} {
		cfg, err := Twitter(name, 10000, 1)
		if err != nil {
			t.Fatal(err)
		}
		g := NewGenerator(cfg)
		reads := 0
		const n = 20000
		var sizeSum int
		sizeCnt := 0
		for i := 0; i < n; i++ {
			op := g.Next()
			if op.Kind == OpRead {
				reads++
			}
			if len(op.Value) > 0 {
				sizeSum += len(op.Value)
				sizeCnt++
			}
		}
		readFrac := float64(reads) / n
		if math.Abs(readFrac-cfg.Mix.Read) > 0.03 {
			t.Fatalf("%s read fraction %f, want %f", name, readFrac, cfg.Mix.Read)
		}
		if sizeCnt > 0 {
			mean := float64(sizeSum) / float64(sizeCnt)
			if math.Abs(mean-float64(cfg.ValueSize)) > float64(cfg.ValueSize)/2 {
				t.Fatalf("%s mean value size %f, want ≈%d", name, mean, cfg.ValueSize)
			}
		}
	}
	if _, err := Twitter("cluster99", 100, 1); err == nil {
		t.Fatal("unknown trace accepted")
	}
}

func TestLoadValuesDeterministic(t *testing.T) {
	cfg, _ := YCSB('A', 100, 64, 0, 42)
	g1 := NewGenerator(cfg)
	g2 := NewGenerator(cfg)
	for i := 0; i < 100; i++ {
		if string(g1.LoadValue(i)) != string(g2.LoadValue(i)) {
			t.Fatal("load values not deterministic")
		}
		if len(g1.LoadValue(i)) != 64 {
			t.Fatalf("load value size %d", len(g1.LoadValue(i)))
		}
	}
}

func TestValueSizeSigma(t *testing.T) {
	cfg, _ := Twitter("cluster19", 1000, 1)
	g := NewGenerator(cfg)
	sizes := map[int]bool{}
	for i := 0; i < 200; i++ {
		if op := g.Next(); op.Kind == OpUpdate {
			sizes[len(op.Value)] = true
		}
	}
	if len(sizes) < 5 {
		t.Fatalf("sigma produced only %d distinct sizes", len(sizes))
	}
}
