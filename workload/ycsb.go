package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// OpKind is a request type.
type OpKind int

const (
	// OpRead is a point lookup.
	OpRead OpKind = iota
	// OpUpdate overwrites an existing key.
	OpUpdate
	// OpInsert writes a brand-new key.
	OpInsert
	// OpScan is a range query.
	OpScan
	// OpRMW is a read-modify-write (YCSB-F).
	OpRMW
	// OpDelete removes a key (tombstone churn; not part of the core YCSB
	// letters, used by the delete-heavy mix).
	OpDelete
)

// String names the op.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpUpdate:
		return "update"
	case OpInsert:
		return "insert"
	case OpScan:
		return "scan"
	case OpRMW:
		return "rmw"
	case OpDelete:
		return "delete"
	}
	return "unknown"
}

// Op is one generated request.
type Op struct {
	Kind    OpKind
	Key     []byte
	Value   []byte // for updates/inserts/RMW
	ScanLen int    // for scans
}

// Mix is the operation proportions of a workload.
type Mix struct {
	Read, Update, Insert, Scan, RMW, Delete float64
}

// Distribution selects the key popularity model.
type Distribution int

const (
	// DistZipfian is scrambled zipfian (YCSB default, θ = 0.99).
	DistZipfian Distribution = iota
	// DistUniform is uniform.
	DistUniform
	// DistLatest skews to recently inserted keys (YCSB-D).
	DistLatest
)

// Config fully describes a workload.
type Config struct {
	Name  string
	Keys  int // initial dataset size
	Mix   Mix
	Dist  Distribution
	Theta float64 // zipfian parameter
	// ValueSize is the object size; if ValueSizeSigma > 0, sizes are
	// log-normal-ish around ValueSize (Twitter traces).
	ValueSize      int
	ValueSizeSigma float64
	MaxScanLen     int
	Seed           int64
}

// YCSB returns the standard workload configs of Table 4. w is 'A'..'F'.
// theta is the zipfian parameter (pass 0 for the YCSB default 0.99).
func YCSB(w byte, keys, valueSize int, theta float64, seed int64) (Config, error) {
	if theta == 0 {
		theta = 0.99
	}
	c := Config{
		Name:       fmt.Sprintf("ycsb-%c", w),
		Keys:       keys,
		Dist:       DistZipfian,
		Theta:      theta,
		ValueSize:  valueSize,
		MaxScanLen: 100,
		Seed:       seed,
	}
	switch w {
	case 'A', 'a':
		c.Mix = Mix{Read: 0.5, Update: 0.5}
	case 'B', 'b':
		c.Mix = Mix{Read: 0.95, Update: 0.05}
	case 'C', 'c':
		c.Mix = Mix{Read: 1.0}
	case 'D', 'd':
		c.Mix = Mix{Read: 0.95, Insert: 0.05}
		c.Dist = DistLatest
	case 'E', 'e':
		c.Mix = Mix{Scan: 0.95, Insert: 0.05}
	case 'F', 'f':
		c.Mix = Mix{Read: 0.5, RMW: 0.5}
	default:
		return c, fmt.Errorf("workload: unknown YCSB workload %q", w)
	}
	return c, nil
}

// DeleteHeavy returns a YCSB-style delete-heavy churn mix (~25% DEL): reads
// dominate the remainder, inserts replace the deleted population so the
// dataset size stays roughly stable, and the zipfian draw means hot keys
// are deleted and re-created continuously — the workload that exercises
// tombstone annihilation, tracker eviction on delete, and NVM space
// reclaim. theta 0 takes the YCSB default 0.99.
func DeleteHeavy(keys, valueSize int, theta float64, seed int64) Config {
	if theta == 0 {
		theta = 0.99
	}
	return Config{
		Name:      "delete-heavy",
		Keys:      keys,
		Mix:       Mix{Read: 0.40, Update: 0.10, Insert: 0.25, Delete: 0.25},
		Dist:      DistZipfian,
		Theta:     theta,
		ValueSize: valueSize,
		Seed:      seed,
	}
}

// Twitter returns a synthetic equivalent of one of the paper's three
// production traces (Table 5 / Yang et al. OSDI'20). name is "cluster39"
// (write-heavy, uniform writes), "cluster19" (mixed, zipf reads + uniform
// writes, tiny 102 B objects), or "cluster51" (read-heavy, zipfian, 370 B).
func Twitter(name string, keys int, seed int64) (Config, error) {
	c := Config{Name: name, Keys: keys, Seed: seed, MaxScanLen: 0}
	switch name {
	case "cluster39":
		c.Mix = Mix{Read: 0.06, Update: 0.94}
		c.Dist = DistUniform
		c.ValueSize = 230
		c.ValueSizeSigma = 0.3
	case "cluster19":
		c.Mix = Mix{Read: 0.75, Update: 0.25}
		c.Dist = DistZipfian
		c.Theta = 0.9
		c.ValueSize = 102
		c.ValueSizeSigma = 0.2
	case "cluster51":
		c.Mix = Mix{Read: 0.90, Update: 0.10}
		c.Dist = DistZipfian
		c.Theta = 1.2
		c.ValueSize = 370
		c.ValueSizeSigma = 0.3
	default:
		return c, fmt.Errorf("workload: unknown Twitter trace %q", name)
	}
	return c, nil
}

// Generator produces an operation stream from a Config.
type Generator struct {
	cfg      Config
	rng      *rand.Rand
	zipf     *Zipfian
	uni      *Uniform
	latest   *Latest
	inserted int
}

// NewGenerator builds a generator. The caller should first load the initial
// dataset via LoadKey/LoadValue for i in [0, cfg.Keys).
func NewGenerator(cfg Config) *Generator {
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	theta := cfg.Theta
	if theta == 0 {
		theta = 0.99
	}
	switch cfg.Dist {
	case DistUniform:
		g.uni = NewUniform(cfg.Keys)
	case DistLatest:
		g.latest = NewLatest(cfg.Keys, theta, func() int { return g.cfg.Keys + g.inserted })
	default:
		g.zipf = NewZipfian(cfg.Keys, theta, true)
	}
	return g
}

// Keys returns the current dataset size (initial + inserts).
func (g *Generator) Keys() int { return g.cfg.Keys + g.inserted }

// LoadKey returns the i-th key for the load phase.
func (g *Generator) LoadKey(i int) []byte { return KeyOf(i) }

// LoadValue returns a deterministic value for the i-th key. A tiny inline
// splitmix64 generator replaces the seeded rand.Rand the harness used to
// build per key: rand's 607-word seeding dominated whole-benchmark CPU.
func (g *Generator) LoadValue(i int) []byte {
	r := miniRNG(uint64(g.cfg.Seed) ^ uint64(i)*0x9E3779B97F4A7C15)
	return g.value(&r)
}

func (g *Generator) valueFor(rng *rand.Rand) []byte {
	r := miniRNG(rng.Uint64())
	return g.value(&r)
}

func (g *Generator) value(r *miniRNG) []byte {
	size := g.cfg.ValueSize
	if size <= 0 {
		size = 1024
	}
	if g.cfg.ValueSizeSigma > 0 {
		f := 1 + g.cfg.ValueSizeSigma*r.norm()
		if f < 0.3 {
			f = 0.3
		}
		if f > 3 {
			f = 3
		}
		size = int(float64(size) * f)
		if size < 16 {
			size = 16
		}
	}
	v := make([]byte, size)
	// Eight letters per PRNG step instead of one Intn call per byte.
	for i := 0; i < len(v); i += 8 {
		x := r.next()
		for j := i; j < i+8 && j < len(v); j++ {
			v[j] = 'a' + byte(x%26)
			x >>= 8
		}
	}
	return v
}

// miniRNG is a splitmix64 PRNG: strong enough for filler values and object
// sizes, and constructible per key for free.
type miniRNG uint64

func (r *miniRNG) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// norm draws a standard normal deviate via Box–Muller.
func (r *miniRNG) norm() float64 {
	u1 := (float64(r.next()>>11) + 0.5) / (1 << 53)
	u2 := float64(r.next()>>11) / (1 << 53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// nextKeyIdx draws a key index per the distribution.
func (g *Generator) nextKeyIdx() int {
	switch {
	case g.uni != nil:
		return g.uni.Next(g.rng)
	case g.latest != nil:
		return g.latest.Next(g.rng)
	default:
		return g.zipf.Next(g.rng)
	}
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	r := g.rng.Float64()
	m := g.cfg.Mix
	switch {
	case r < m.Read:
		return Op{Kind: OpRead, Key: KeyOf(g.nextKeyIdx())}
	case r < m.Read+m.Update:
		return Op{Kind: OpUpdate, Key: KeyOf(g.nextKeyIdx()), Value: g.valueFor(g.rng)}
	case r < m.Read+m.Update+m.Insert:
		idx := g.cfg.Keys + g.inserted
		g.inserted++
		return Op{Kind: OpInsert, Key: KeyOf(idx), Value: g.valueFor(g.rng)}
	case r < m.Read+m.Update+m.Insert+m.Scan:
		ln := 1
		if g.cfg.MaxScanLen > 1 {
			ln = 1 + g.rng.Intn(g.cfg.MaxScanLen)
		}
		return Op{Kind: OpScan, Key: KeyOf(g.nextKeyIdx()), ScanLen: ln}
	case r < m.Read+m.Update+m.Insert+m.Scan+m.Delete:
		return Op{Kind: OpDelete, Key: KeyOf(g.nextKeyIdx())}
	default:
		return Op{Kind: OpRMW, Key: KeyOf(g.nextKeyIdx()), Value: g.valueFor(g.rng)}
	}
}

// Config returns the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }

// Shard draws n operations from gen and routes each to one of parts queues
// via route (typically DB.PartitionOf). Generation stays serial — the
// generator is not safe for concurrent use and op order must be
// deterministic — but the returned queues preserve per-shard issue order,
// so shared-nothing partition workers can consume them concurrently.
//
// An out-of-range route result is a routing bug in the caller's engine and
// returns an error: silently rerouting (say, to queue 0) would execute the
// op on a partition that doesn't own the key, corrupting the shared-nothing
// workload split that every driver invariant rests on.
func Shard(gen *Generator, n, parts int, route func(key []byte) int) ([][]Op, error) {
	queues := make([][]Op, parts)
	for i := range queues {
		// Pre-size for an even split, plus slack for skewed routing.
		queues[i] = make([]Op, 0, n/parts+n/(parts*4)+1)
	}
	for i := 0; i < n; i++ {
		op := gen.Next()
		pi := route(op.Key)
		if pi < 0 || pi >= parts {
			return nil, fmt.Errorf("workload: route(%q) = %d outside [0, %d) — engine routing bug", op.Key, pi, parts)
		}
		queues[pi] = append(queues[pi], op)
	}
	return queues, nil
}
