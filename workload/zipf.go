// Package workload generates the request streams of the paper's
// evaluation: the YCSB core workloads A–F over zipfian/uniform/latest key
// distributions (Table 4), zipf-parameter sweeps (Fig 11), and synthetic
// equivalents of the three Twitter production traces (Table 5) matching
// their published read:write ratios, key skew, and object sizes.
package workload

import (
	"math"
	"math/rand"
)

// Zipfian draws ranks from a zipf distribution with parameter theta, using
// the Gray et al. rejection-free method YCSB uses, then scrambles ranks
// across the key space with an FNV hash so popular keys are spread out
// (YCSB's "scrambled zipfian").
type Zipfian struct {
	n         int
	theta     float64
	alpha     float64
	zetan     float64
	eta       float64
	zeta2     float64
	scrambled bool
}

// NewZipfian builds a generator over [0, n) with skew theta (YCSB default
// 0.99). Larger theta is more skewed; theta must be in (0, 1) ∪ (1, ∞)
// — for theta == 1 pass 0.999.
func NewZipfian(n int, theta float64, scrambled bool) *Zipfian {
	if n < 1 {
		n = 1
	}
	z := &Zipfian{n: n, theta: theta, scrambled: scrambled}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int, theta float64) float64 {
	var sum float64
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws a key index in [0, n).
func (z *Zipfian) Next(rng *rand.Rand) int {
	u := rng.Float64()
	uz := u * z.zetan
	var rank int
	switch {
	case uz < 1.0:
		rank = 0
	case uz < 1.0+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = int(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	if !z.scrambled {
		return rank
	}
	return int(fnv64(uint64(rank)) % uint64(z.n))
}

// fnv64 hashes an integer (for scrambling and key spreading).
func fnv64(x uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= 1099511628211
		x >>= 8
	}
	return h
}

// Uniform draws uniformly from [0, n).
type Uniform struct{ n int }

// NewUniform builds a uniform generator over [0, n).
func NewUniform(n int) *Uniform {
	if n < 1 {
		n = 1
	}
	return &Uniform{n}
}

// Next draws a key index.
func (u *Uniform) Next(rng *rand.Rand) int { return rng.Intn(u.n) }

// Latest skews toward recently inserted keys (YCSB-D): it draws a zipfian
// offset back from the newest key.
type Latest struct {
	z *Zipfian
	n func() int // current key count (grows with inserts)
}

// NewLatest builds a latest-distribution generator; newestFn reports the
// current number of keys.
func NewLatest(initial int, theta float64, newestFn func() int) *Latest {
	return &Latest{z: NewZipfian(initial, theta, false), n: newestFn}
}

// Next draws a key index, biased to recent inserts.
func (l *Latest) Next(rng *rand.Rand) int {
	n := l.n()
	off := l.z.Next(rng)
	idx := n - 1 - off
	if idx < 0 {
		idx = 0
	}
	return idx
}

// KeyOf formats key index i as the canonical fixed-width key. Fixed-width
// decimal keys make lexicographic and numeric order coincide, which the
// engine's bucket statistics rely on. Formatted by hand: the generator
// emits one key per operation, and fmt.Sprintf was the single largest
// allocation site in the whole harness.
func KeyOf(i int) []byte {
	b := make([]byte, 16)
	b[0], b[1], b[2], b[3] = 'u', 's', 'e', 'r'
	for j := 15; j >= 4; j-- {
		b[j] = byte('0' + i%10)
		i /= 10
	}
	return b
}

// IndexOf inverts KeyOf (for tests).
func IndexOf(key []byte) int {
	n := 0
	for _, b := range key {
		if b >= '0' && b <= '9' {
			n = n*10 + int(b-'0')
		}
	}
	return n
}
